#ifndef BYTECARD_CARDEST_BAYES_BAYES_NET_H_
#define BYTECARD_CARDEST_BAYES_BAYES_NET_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cardest/discretizer.h"
#include "common/rng.h"
#include "common/serde.h"
#include "minihouse/query.h"
#include "minihouse/table.h"

namespace bytecard::cardest {

// One variable of a tree-structured Bayesian network. CPDs are exactly the
// paper's representation (§4.1): a 1-D vector for the root, a 2-D matrix
// (row-major [parent_bin][bin]) for non-root nodes.
struct BnNode {
  int column = -1;  // index into the source table's schema
  int parent = -1;  // node index, -1 for the root
  Discretizer discretizer;
  std::vector<double> cpd;

  int num_bins() const { return discretizer.num_bins(); }
};

struct BnTrainOptions {
  // Columns (schema indices) to model. Empty = all supported columns.
  std::vector<int> columns;
  // Bin alphabet cap per column.
  int max_bins = 64;
  // Join columns discretize with externally supplied boundaries so that all
  // tables sharing a join key group agree on bucket identity (FactorJoin).
  std::map<int, std::vector<int64_t>> join_column_boundaries;
  // Laplace smoothing mass for CPD estimation.
  double laplace_alpha = 0.02;
  // Training rows are sampled down to this many (0 = use all rows).
  int64_t max_train_rows = 200000;
  uint64_t seed = 1;
};

// The single-table COUNT model (paper §4.1): tree-structured BN trained by
// ModelForge with Chow-Liu structure learning + smoothed maximum-likelihood
// CPD fitting (equivalent to EM on fully observed data).
class BayesNetModel {
 public:
  BayesNetModel() = default;

  static Result<BayesNetModel> Train(const minihouse::Table& table,
                                     const BnTrainOptions& options);

  // Assembles a model from explicit parts. The incremental-maintenance path
  // uses this to publish a successor model with the structure/discretizers
  // of a trained base and CPDs renormalized from delta-updated counts; the
  // result must still pass ValidateStructure.
  static BayesNetModel FromParts(std::string table_name, int64_t row_count,
                                 std::vector<BnNode> nodes);

  const std::string& table_name() const { return table_name_; }
  int64_t row_count() const { return row_count_; }
  const std::vector<BnNode>& nodes() const { return nodes_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  // Node index modelling schema column `column`, or -1.
  int NodeOfColumn(int column) const;

  // Structural health check used by the Model Validator: every non-root
  // parent index in range, exactly one root, no cycles (paper's DAG check).
  Status ValidateStructure() const;

  // Serialized artifact size in bytes (reported in Tables 3 and 6).
  void Serialize(BufferWriter* writer) const;
  static Result<BayesNetModel> Deserialize(BufferReader* reader);

 private:
  friend class BnInferenceContext;

  std::string table_name_;
  int64_t row_count_ = 0;
  std::vector<BnNode> nodes_;
};

// Immutable inference context produced by initContext (paper §4.1). Freezes
// the two structures the paper calls out: (1) root identification and
// (2) CPD indexing — CPDs flattened into an array in topological order with
// children lists, so estimation never walks the tree via pointers. All
// methods are const and lock-free: one context serves all query threads.
class BnInferenceContext {
 public:
  // The model must outlive the context.
  explicit BnInferenceContext(const BayesNetModel* model);

  // P(filters) under the model, in [0, 1]. Filters on unmodelled columns are
  // treated as selectivity 1 (consistent with how ByteHouse falls back).
  double EstimateSelectivity(const minihouse::Conjunction& filters) const;

  // row_count * P(filters).
  double EstimateCount(const minihouse::Conjunction& filters) const;

  // Joint distribution over `column`'s bins with the evidence applied:
  // out[b] = P(filters AND column-bin = b). Sum equals
  // EstimateSelectivity(filters). This is the per-bucket distribution
  // FactorJoin consumes.
  Result<std::vector<double>> MarginalWithEvidence(
      const minihouse::Conjunction& filters, int column) const;

  int root() const { return root_; }
  const std::vector<int>& topological_order() const { return topo_; }

  // Ablation reference path: same estimate computed by recursive tree
  // walking over the model's node structs (no flat CPD indexing). Used by
  // bench_ablation_cpd_indexing to quantify the paper's InitContext design.
  double EstimateSelectivityTreeWalk(
      const minihouse::Conjunction& filters) const;

 private:
  // Evidence weight vectors per node (1.0 where unconstrained).
  std::vector<std::vector<double>> BuildEvidence(
      const minihouse::Conjunction& filters) const;

  // Upward pass; returns per-node up messages and child-sum caches.
  void UpwardPass(const std::vector<std::vector<double>>& evidence,
                  std::vector<std::vector<double>>* up,
                  std::vector<std::vector<double>>* child_sum) const;

  const BayesNetModel* model_;
  int root_ = 0;
  std::vector<int> topo_;                  // parents before children
  std::vector<std::vector<int>> children_;
  std::vector<int> col_to_node_;           // schema column -> node index
  int max_column_ = -1;
  // Flat CPD storage in topological order (the paper's CPD index array).
  std::vector<double> flat_cpd_;
  std::vector<int64_t> cpd_offset_;        // per node
};

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_BAYES_BAYES_NET_H_
