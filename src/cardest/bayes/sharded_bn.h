#ifndef BYTECARD_CARDEST_BAYES_SHARDED_BN_H_
#define BYTECARD_CARDEST_BAYES_SHARDED_BN_H_

#include <memory>
#include <vector>

#include "cardest/bayes/bayes_net.h"

namespace bytecard::cardest {

// Consumer side of the paper's shard-specialized training (§4.3): when a
// table's data distribution varies notably across shards, ModelForge trains
// one BN per shard ("<table>@shardK" artifacts); this ensemble combines
// their estimates. Selectivity is the row-weighted mixture of per-shard
// selectivities, and counts are the sum of per-shard counts — exact when
// shards partition the table.
class ShardedBnEnsemble {
 public:
  ShardedBnEnsemble() = default;

  // Takes ownership of per-shard models (each trained on one shard's rows).
  static Result<ShardedBnEnsemble> Build(
      std::vector<BayesNetModel> shard_models);

  int num_shards() const { return static_cast<int>(models_.size()); }
  int64_t total_rows() const { return total_rows_; }

  // Mixture probability: sum_s (rows_s / total) * P_s(filters).
  double EstimateSelectivity(const minihouse::Conjunction& filters) const;

  // Sum of per-shard counts: sum_s rows_s * P_s(filters).
  double EstimateCount(const minihouse::Conjunction& filters) const;

  // Per-shard context access (for monitoring individual shard models).
  const BnInferenceContext& shard_context(int shard) const {
    return *contexts_[shard];
  }
  const BayesNetModel& shard_model(int shard) const {
    return *models_[shard];
  }

 private:
  // unique_ptr keeps model addresses stable for the contexts pointing at them.
  std::vector<std::unique_ptr<BayesNetModel>> models_;
  std::vector<std::unique_ptr<BnInferenceContext>> contexts_;
  int64_t total_rows_ = 0;
};

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_BAYES_SHARDED_BN_H_
