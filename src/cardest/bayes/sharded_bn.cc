#include "cardest/bayes/sharded_bn.h"

#include <algorithm>

namespace bytecard::cardest {

Result<ShardedBnEnsemble> ShardedBnEnsemble::Build(
    std::vector<BayesNetModel> shard_models) {
  if (shard_models.empty()) {
    return Status::InvalidArgument("sharded ensemble needs >= 1 shard model");
  }
  ShardedBnEnsemble ensemble;
  for (BayesNetModel& model : shard_models) {
    BC_RETURN_IF_ERROR(model.ValidateStructure());
    ensemble.total_rows_ += model.row_count();
    ensemble.models_.push_back(
        std::make_unique<BayesNetModel>(std::move(model)));
    ensemble.contexts_.push_back(
        std::make_unique<BnInferenceContext>(ensemble.models_.back().get()));
  }
  if (ensemble.total_rows_ <= 0) {
    return Status::InvalidArgument("sharded ensemble covers no rows");
  }
  return ensemble;
}

double ShardedBnEnsemble::EstimateSelectivity(
    const minihouse::Conjunction& filters) const {
  return EstimateCount(filters) / static_cast<double>(total_rows_);
}

double ShardedBnEnsemble::EstimateCount(
    const minihouse::Conjunction& filters) const {
  double count = 0.0;
  for (size_t s = 0; s < contexts_.size(); ++s) {
    count += contexts_[s]->EstimateCount(filters);
  }
  return std::max(0.0, count);
}

}  // namespace bytecard::cardest
