#include "cardest/ndv/hll.h"

#include "minihouse/column.h"
#include "minihouse/schema.h"

namespace bytecard::cardest {

Result<NdvSketch> NdvSketch::Deserialize(BufferReader* reader) {
  BC_ASSIGN_OR_RETURN(stats::HyperLogLog hll,
                      stats::HyperLogLog::Deserialize(reader));
  return NdvSketch(std::move(hll));
}

void NdvSketchCatalog::SeedTable(const minihouse::Table& table,
                                 int precision) {
  for (int c = 0; c < table.num_columns(); ++c) {
    const minihouse::Column& column = table.column(c);
    if (column.type() == minihouse::DataType::kArray) continue;
    NdvSketch sketch(precision);
    const int64_t rows = column.num_rows();
    for (int64_t i = 0; i < rows; ++i) sketch.Add(column.NumericAt(i));
    sketches_.insert_or_assign({table.name(), c}, std::move(sketch));
  }
}

const NdvSketch* NdvSketchCatalog::Find(const std::string& table,
                                        int column) const {
  auto it = sketches_.find({table, column});
  return it == sketches_.end() ? nullptr : &it->second;
}

NdvSketch* NdvSketchCatalog::FindMutable(const std::string& table,
                                         int column) {
  auto it = sketches_.find({table, column});
  return it == sketches_.end() ? nullptr : &it->second;
}

double NdvSketchCatalog::Estimate(const std::string& table, int column) const {
  const NdvSketch* sketch = Find(table, column);
  return sketch == nullptr ? -1.0 : sketch->Estimate();
}

}  // namespace bytecard::cardest
