#ifndef BYTECARD_CARDEST_NDV_RBX_H_
#define BYTECARD_CARDEST_NDV_RBX_H_

#include <cstdint>
#include <vector>

#include "cardest/ndv/freq_profile.h"
#include "cardest/ndv/mlp.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"
#include "stats/ndv_classic.h"

namespace bytecard::cardest {

// One labelled training example: the frequency profile of a sample together
// with the true population NDV.
struct NdvTrainingExample {
  stats::SampleFrequencies frequencies;
  int64_t true_ndv = 0;
};

struct RbxTrainOptions {
  // Synthetic-column grid: population sizes and sampling rates to sweep.
  std::vector<int64_t> population_sizes = {20000, 60000, 150000};
  std::vector<double> sample_rates = {0.005, 0.01, 0.03, 0.1};
  // Distribution families per (N, rate) cell (uniform / zipf variants /
  // heavy-hitter mixtures), replicated this many times with fresh seeds.
  int replicas = 3;
  // Families included in the synthetic grid (empty = all). The calibration
  // ablation trains a baseline without the near-unique family to reproduce
  // the production gap §5.2.2 describes.
  std::vector<int> families;
  int epochs = 80;
  double learning_rate = 1e-3;
  uint64_t seed = 42;
};

// The workload-independent learned NDV estimator (paper §4.3): a seven-layer
// network over the frequency profile, trained once offline on synthetic
// columns spanning distribution families, then reused for every workload.
// The network predicts log(D / d) — the log ratio of true to observed
// distinct counts — which keeps targets scale-free across population sizes.
class RbxModel {
 public:
  RbxModel() = default;

  // One-off offline training on internally generated synthetic columns.
  static Result<RbxModel> TrainWorkloadIndependent(
      const RbxTrainOptions& options);

  // Trains on explicit examples (used by tests and by fine-tuning flows that
  // assemble their own augmented datasets).
  static Result<RbxModel> TrainOnExamples(
      const std::vector<NdvTrainingExample>& examples,
      const RbxTrainOptions& options);

  // Estimated population NDV from a sample's frequency statistics, clamped
  // to the feasible range [sample distinct, population size].
  double EstimateNdv(const stats::SampleFrequencies& frequencies) const;

  // Calibration fine-tuning (paper §5.2.2): continues training from the
  // current checkpoint on problematic-column samples augmented with
  // synthetic high-NDV columns, with a reduced learning rate and a heavier
  // penalty on underestimation.
  Status FineTune(const std::vector<NdvTrainingExample>& problematic,
                  uint64_t seed);

  const Mlp& network() const { return network_; }
  Status Validate() const { return network_.ValidateWeights(); }

  void Serialize(BufferWriter* writer) const;
  static Result<RbxModel> Deserialize(BufferReader* reader);

 private:
  Mlp network_;
};

// Generates one synthetic column population + sample and its training
// example. `family` selects the distribution shape:
//   0 uniform over D values, 1 zipf(0.8), 2 zipf(1.3),
//   3 heavy-hitter mixture, 4 near-unique (D ~ N).
NdvTrainingExample MakeSyntheticExample(int family, int64_t population_size,
                                        double sample_rate, Rng* rng);

inline constexpr int kRbxFamilies = 5;

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_NDV_RBX_H_
