#include "cardest/ndv/freq_profile.h"

#include <cmath>

namespace bytecard::cardest {

std::vector<double> BuildFrequencyProfile(const stats::SampleFrequencies& s) {
  std::vector<double> features(kFrequencyProfileDim, 0.0);

  auto freq_at = [&](size_t j) -> double {
    // f_j counts distinct values occurring exactly j times.
    return j >= 1 && j <= s.freq.size()
               ? static_cast<double>(s.freq[j - 1])
               : 0.0;
  };

  for (int j = 1; j <= 8; ++j) {
    features[j - 1] = std::log1p(freq_at(j));
  }
  const int64_t range_hi[] = {16, 32, 64, 128};
  int64_t lo = 9;
  for (int r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (int64_t j = lo; j <= range_hi[r]; ++j) sum += freq_at(j);
    features[8 + r] = std::log1p(sum);
    lo = range_hi[r] + 1;
  }
  double tail = 0.0;
  for (size_t j = 129; j <= s.freq.size(); ++j) tail += freq_at(j);
  features[12] = std::log1p(tail);

  features[13] = std::log1p(static_cast<double>(s.sample_distinct()));
  features[14] = std::log1p(static_cast<double>(s.sample_size));
  features[15] = std::log1p(static_cast<double>(s.population_size));
  features[16] = s.population_size > 0
                     ? static_cast<double>(s.sample_size) /
                           static_cast<double>(s.population_size)
                     : 0.0;
  return features;
}

}  // namespace bytecard::cardest
