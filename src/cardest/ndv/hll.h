#ifndef BYTECARD_CARDEST_NDV_HLL_H_
#define BYTECARD_CARDEST_NDV_HLL_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/serde.h"
#include "common/status.h"
#include "minihouse/table.h"
#include "stats/hyperloglog.h"

namespace bytecard::cardest {

// Mergeable HyperLogLog-backed NDV sketch for the incremental-maintenance
// path (DESIGN.md §13). A sketch is seeded once with a full column pass at
// enable time; every ingest batch merges its batch-local sketch in O(2^p),
// so refresh-time NDV no longer needs a full scan. Deletion-free appends
// only ever grow the distinct set, so the estimate is always current for
// the data actually in the table.
class NdvSketch {
 public:
  explicit NdvSketch(int precision = 12) : hll_(precision) {}

  // Add/Merge return true when the sketch state changed — callers caching
  // derived estimates skip the O(2^p) Estimate() rescan when they return
  // false (the steady-state ingest path, where most values are re-sightings).
  bool Add(int64_t value) { return hll_.Add(value); }
  double Estimate() const { return hll_.Estimate(); }
  int precision() const { return hll_.precision(); }

  // Merges a sketch of the same precision (register-wise max): commutative,
  // associative, idempotent — the property tests pin all three.
  bool Merge(const NdvSketch& other) { return hll_.Merge(other.hll_); }

  void Serialize(BufferWriter* writer) const { hll_.Serialize(writer); }
  static Result<NdvSketch> Deserialize(BufferReader* reader);

 private:
  explicit NdvSketch(stats::HyperLogLog hll) : hll_(std::move(hll)) {}

  stats::HyperLogLog hll_;
};

// Catalog of NDV sketches keyed by (table, column index). The incremental
// maintainer owns a mutable catalog it merges batch deltas into; each
// snapshot publish carries an immutable copy, so estimation reads never race
// maintenance writes.
class NdvSketchCatalog {
 public:
  // Seeds a sketch per scalar column of `table` with one full pass. Array
  // columns have no scalar domain and are skipped.
  void SeedTable(const minihouse::Table& table, int precision = 12);

  // The sketch for (table, column), or nullptr when never seeded.
  const NdvSketch* Find(const std::string& table, int column) const;
  NdvSketch* FindMutable(const std::string& table, int column);

  // Estimated NDV for (table, column), or a negative value when absent —
  // callers fall through to their non-sketch path.
  double Estimate(const std::string& table, int column) const;

  size_t size() const { return sketches_.size(); }

 private:
  std::map<std::pair<std::string, int>, NdvSketch> sketches_;
};

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_NDV_HLL_H_
