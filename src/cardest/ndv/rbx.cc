#include "cardest/ndv/rbx.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace bytecard::cardest {

namespace {
constexpr uint32_t kRbxFormatVersion = 1;

// Seven weight layers (paper §4.3: "seven-network layer" architecture).
const std::vector<int>& RbxLayerSizes() {
  static const std::vector<int>* kSizes = new std::vector<int>{
      kFrequencyProfileDim, 64, 64, 64, 64, 32, 16, 1};
  return *kSizes;
}

double TargetOf(const NdvTrainingExample& example) {
  const double d =
      std::max<int64_t>(1, example.frequencies.sample_distinct());
  const double big_d = std::max<int64_t>(1, example.true_ndv);
  return std::log(big_d / d);
}

}  // namespace

NdvTrainingExample MakeSyntheticExample(int family, int64_t population_size,
                                        double sample_rate, Rng* rng) {
  NdvTrainingExample example;
  const int64_t n = population_size;

  // Build the population implicitly: draw N values from the family.
  std::vector<int64_t> population(n);
  switch (family % kRbxFamilies) {
    case 0: {  // uniform over D values
      const int64_t domain = std::max<int64_t>(
          2, static_cast<int64_t>(std::pow(
                 10.0, 1.0 + rng->NextDouble() * 4.0)));  // D in [10, 1e5)
      for (auto& v : population) {
        v = static_cast<int64_t>(rng->Uniform(domain));
      }
      break;
    }
    case 1:
    case 2: {  // zipf skew 0.8 / 1.3
      const double skew = family % kRbxFamilies == 1 ? 0.8 : 1.3;
      const int64_t domain = std::max<int64_t>(
          2, static_cast<int64_t>(std::pow(10.0, 2.0 + rng->NextDouble() * 3.0)));
      ZipfDistribution zipf(static_cast<uint64_t>(domain), skew);
      for (auto& v : population) {
        v = static_cast<int64_t>(zipf.Sample(rng));
      }
      break;
    }
    case 3: {  // heavy hitters: a few huge values + a uniform long tail
      const int64_t heavy = 1 + static_cast<int64_t>(rng->Uniform(8));
      const int64_t tail_domain =
          std::max<int64_t>(2, n / (2 + static_cast<int64_t>(rng->Uniform(20))));
      for (auto& v : population) {
        if (rng->NextDouble() < 0.6) {
          v = static_cast<int64_t>(rng->Uniform(heavy));
        } else {
          v = heavy + static_cast<int64_t>(rng->Uniform(tail_domain));
        }
      }
      break;
    }
    default: {  // near-unique column (D close to N): the hard case §5.2.2
      const double dup_rate = rng->NextDouble() * 0.1;
      int64_t next = 0;
      for (auto& v : population) {
        if (rng->NextDouble() < dup_rate && next > 0) {
          v = static_cast<int64_t>(rng->Uniform(next));
        } else {
          v = next++;
        }
      }
      break;
    }
  }

  // True NDV.
  std::unordered_set<int64_t> distinct(population.begin(), population.end());
  example.true_ndv = static_cast<int64_t>(distinct.size());

  // Uniform sample without replacement.
  int64_t want = std::max<int64_t>(
      1, static_cast<int64_t>(sample_rate * static_cast<double>(n)));
  want = std::min(want, n);
  for (int64_t i = 0; i < want; ++i) {
    const int64_t j = i + static_cast<int64_t>(rng->Uniform(n - i));
    std::swap(population[i], population[j]);
  }
  population.resize(want);
  example.frequencies = stats::ComputeFrequencies(population, n);
  return example;
}

Result<RbxModel> RbxModel::TrainOnExamples(
    const std::vector<NdvTrainingExample>& examples,
    const RbxTrainOptions& options) {
  if (examples.empty()) {
    return Status::InvalidArgument("RBX training needs examples");
  }
  RbxModel model;
  model.network_ = Mlp::Create(RbxLayerSizes(), options.seed);

  std::vector<std::vector<double>> inputs;
  std::vector<double> targets;
  inputs.reserve(examples.size());
  targets.reserve(examples.size());
  for (const NdvTrainingExample& example : examples) {
    inputs.push_back(BuildFrequencyProfile(example.frequencies));
    targets.push_back(TargetOf(example));
  }

  Mlp::TrainConfig config;
  config.learning_rate = options.learning_rate;
  config.epochs = options.epochs;
  config.seed = options.seed;
  model.network_.Train(inputs, targets, config);
  BC_RETURN_IF_ERROR(model.network_.ValidateWeights());
  return model;
}

Result<RbxModel> RbxModel::TrainWorkloadIndependent(
    const RbxTrainOptions& options) {
  Rng rng(options.seed);
  std::vector<int> families = options.families;
  if (families.empty()) {
    for (int family = 0; family < kRbxFamilies; ++family) {
      families.push_back(family);
    }
  }
  std::vector<NdvTrainingExample> examples;
  for (int64_t n : options.population_sizes) {
    for (double rate : options.sample_rates) {
      for (int family : families) {
        for (int r = 0; r < options.replicas; ++r) {
          examples.push_back(MakeSyntheticExample(family, n, rate, &rng));
        }
      }
    }
  }
  return TrainOnExamples(examples, options);
}

double RbxModel::EstimateNdv(
    const stats::SampleFrequencies& frequencies) const {
  const double d =
      static_cast<double>(std::max<int64_t>(1, frequencies.sample_distinct()));
  if (network_.input_dim() == 0) return d;
  const double log_ratio =
      network_.Predict(BuildFrequencyProfile(frequencies));
  const double estimate = d * std::exp(std::max(0.0, log_ratio));
  const double upper =
      static_cast<double>(std::max<int64_t>(1, frequencies.population_size));
  return std::clamp(estimate, d, upper);
}

Status RbxModel::FineTune(const std::vector<NdvTrainingExample>& problematic,
                          uint64_t seed) {
  if (problematic.empty()) {
    return Status::InvalidArgument("fine-tune needs problematic examples");
  }
  // Augment with synthetic high-NDV columns (family 4) so the column-specific
  // adjustment does not destroy general behaviour (paper §5.2.2).
  Rng rng(seed);
  std::vector<NdvTrainingExample> dataset = problematic;
  const int synthetic = static_cast<int>(problematic.size()) * 2;
  for (int i = 0; i < synthetic; ++i) {
    dataset.push_back(
        MakeSyntheticExample(4, 50000, 0.01 + rng.NextDouble() * 0.05, &rng));
  }

  std::vector<std::vector<double>> inputs;
  std::vector<double> targets;
  for (const NdvTrainingExample& example : dataset) {
    inputs.push_back(BuildFrequencyProfile(example.frequencies));
    targets.push_back(TargetOf(example));
  }

  Mlp::TrainConfig config;
  config.learning_rate = 1e-4;  // reduced LR: slow, careful convergence
  config.epochs = 40;
  config.underestimation_penalty = 4.0;  // punish underestimates harder
  config.seed = seed;
  network_.Train(inputs, targets, config);
  return network_.ValidateWeights();
}

void RbxModel::Serialize(BufferWriter* writer) const {
  writer->WriteU32(kRbxFormatVersion);
  network_.Serialize(writer);
}

Result<RbxModel> RbxModel::Deserialize(BufferReader* reader) {
  uint32_t version = 0;
  BC_RETURN_IF_ERROR(reader->ReadU32(&version));
  if (version != kRbxFormatVersion) {
    return Status::InvalidModel("unsupported RBX artifact version");
  }
  RbxModel model;
  BC_ASSIGN_OR_RETURN(model.network_, Mlp::Deserialize(reader));
  return model;
}

}  // namespace bytecard::cardest
