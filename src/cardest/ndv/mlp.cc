#include "cardest/ndv/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace bytecard::cardest {

namespace {
constexpr uint32_t kMlpFormatVersion = 1;
}  // namespace

Mlp Mlp::Create(const std::vector<int>& layer_sizes, uint64_t seed) {
  BC_CHECK(layer_sizes.size() >= 2);
  BC_CHECK(layer_sizes.back() == 1);
  Mlp mlp;
  mlp.layer_sizes_ = layer_sizes;
  Rng rng(seed);
  for (size_t l = 0; l + 1 < layer_sizes.size(); ++l) {
    const int in = layer_sizes[l];
    const int out = layer_sizes[l + 1];
    const double scale = std::sqrt(6.0 / static_cast<double>(in + out));
    std::vector<double> w(static_cast<size_t>(in) * out);
    for (double& x : w) x = (rng.NextDouble() * 2.0 - 1.0) * scale;
    mlp.weights_.push_back(std::move(w));
    mlp.biases_.emplace_back(out, 0.0);
  }
  return mlp;
}

double Mlp::Predict(const std::vector<double>& input) const {
  BC_DCHECK(static_cast<int>(input.size()) == input_dim());
  std::vector<double> act = input;
  std::vector<double> next;
  for (size_t l = 0; l < weights_.size(); ++l) {
    const int in = layer_sizes_[l];
    const int out = layer_sizes_[l + 1];
    next.assign(out, 0.0);
    const double* w = weights_[l].data();
    for (int o = 0; o < out; ++o) {
      double s = biases_[l][o];
      const double* row = w + static_cast<size_t>(o) * in;
      for (int i = 0; i < in; ++i) s += row[i] * act[i];
      // ReLU on hidden layers, identity on the output.
      next[o] = (l + 1 < weights_.size()) ? std::max(0.0, s) : s;
    }
    act.swap(next);
  }
  return act[0];
}

double Mlp::Train(const std::vector<std::vector<double>>& inputs,
                  const std::vector<double>& targets,
                  const TrainConfig& config) {
  BC_CHECK(inputs.size() == targets.size());
  if (inputs.empty()) return 0.0;
  const int64_t n = static_cast<int64_t>(inputs.size());
  const int num_weight_layers = static_cast<int>(weights_.size());

  // Adam state.
  std::vector<std::vector<double>> mw(num_weight_layers), vw(num_weight_layers);
  std::vector<std::vector<double>> mb(num_weight_layers), vb(num_weight_layers);
  for (int l = 0; l < num_weight_layers; ++l) {
    mw[l].assign(weights_[l].size(), 0.0);
    vw[l].assign(weights_[l].size(), 0.0);
    mb[l].assign(biases_[l].size(), 0.0);
    vb[l].assign(biases_[l].size(), 0.0);
  }
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  int64_t adam_t = 0;

  Rng rng(config.seed);
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  // Per-example activation storage (activations per layer).
  std::vector<std::vector<double>> acts(layer_sizes_.size());
  std::vector<std::vector<double>> grad_w(num_weight_layers);
  std::vector<std::vector<double>> grad_b(num_weight_layers);

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int64_t cursor = 0;
    while (cursor < n) {
      const int64_t batch_end =
          std::min<int64_t>(n, cursor + config.batch_size);
      const int64_t batch = batch_end - cursor;
      for (int l = 0; l < num_weight_layers; ++l) {
        grad_w[l].assign(weights_[l].size(), 0.0);
        grad_b[l].assign(biases_[l].size(), 0.0);
      }

      for (int64_t k = cursor; k < batch_end; ++k) {
        const int64_t idx = order[k];
        // Forward with activation capture.
        acts[0] = inputs[idx];
        for (int l = 0; l < num_weight_layers; ++l) {
          const int in = layer_sizes_[l];
          const int out = layer_sizes_[l + 1];
          acts[l + 1].assign(out, 0.0);
          const double* w = weights_[l].data();
          for (int o = 0; o < out; ++o) {
            double s = biases_[l][o];
            const double* row = w + static_cast<size_t>(o) * in;
            for (int i = 0; i < in; ++i) s += row[i] * acts[l][i];
            acts[l + 1][o] =
                (l + 1 < num_weight_layers) ? std::max(0.0, s) : s;
          }
        }
        const double pred = acts.back()[0];
        const double err = pred - targets[idx];
        const double weight =
            err < 0.0 ? config.underestimation_penalty : 1.0;
        epoch_loss += weight * err * err;

        // Backward.
        std::vector<double> delta = {2.0 * weight * err};
        for (int l = num_weight_layers - 1; l >= 0; --l) {
          const int in = layer_sizes_[l];
          const int out = layer_sizes_[l + 1];
          for (int o = 0; o < out; ++o) {
            grad_b[l][o] += delta[o];
            double* grow = grad_w[l].data() + static_cast<size_t>(o) * in;
            for (int i = 0; i < in; ++i) grow[i] += delta[o] * acts[l][i];
          }
          if (l == 0) break;
          std::vector<double> prev_delta(in, 0.0);
          const double* w = weights_[l].data();
          for (int i = 0; i < in; ++i) {
            if (acts[l][i] <= 0.0) continue;  // ReLU gate
            double s = 0.0;
            for (int o = 0; o < out; ++o) {
              s += w[static_cast<size_t>(o) * in + i] * delta[o];
            }
            prev_delta[i] = s;
          }
          delta.swap(prev_delta);
        }
      }

      // Adam update on batch means.
      ++adam_t;
      const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(adam_t));
      const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(adam_t));
      const double inv_batch = 1.0 / static_cast<double>(batch);
      for (int l = 0; l < num_weight_layers; ++l) {
        for (size_t i = 0; i < weights_[l].size(); ++i) {
          const double g = grad_w[l][i] * inv_batch;
          mw[l][i] = kBeta1 * mw[l][i] + (1.0 - kBeta1) * g;
          vw[l][i] = kBeta2 * vw[l][i] + (1.0 - kBeta2) * g * g;
          weights_[l][i] -= config.learning_rate * (mw[l][i] / bc1) /
                            (std::sqrt(vw[l][i] / bc2) + kEps);
        }
        for (size_t i = 0; i < biases_[l].size(); ++i) {
          const double g = grad_b[l][i] * inv_batch;
          mb[l][i] = kBeta1 * mb[l][i] + (1.0 - kBeta1) * g;
          vb[l][i] = kBeta2 * vb[l][i] + (1.0 - kBeta2) * g * g;
          biases_[l][i] -= config.learning_rate * (mb[l][i] / bc1) /
                           (std::sqrt(vb[l][i] / bc2) + kEps);
        }
      }
      cursor = batch_end;
    }
    last_epoch_loss = epoch_loss / static_cast<double>(n);
  }
  return last_epoch_loss;
}

int64_t Mlp::num_parameters() const {
  int64_t total = 0;
  for (size_t l = 0; l < weights_.size(); ++l) {
    total += static_cast<int64_t>(weights_[l].size() + biases_[l].size());
  }
  return total;
}

Status Mlp::ValidateWeights() const {
  for (const auto& layer : weights_) {
    for (double w : layer) {
      if (!std::isfinite(w)) {
        return Status::InvalidModel("MLP weight is not finite");
      }
    }
  }
  for (const auto& layer : biases_) {
    for (double b : layer) {
      if (!std::isfinite(b)) {
        return Status::InvalidModel("MLP bias is not finite");
      }
    }
  }
  return Status::Ok();
}

void Mlp::Serialize(BufferWriter* writer) const {
  writer->WriteU32(kMlpFormatVersion);
  writer->WriteU64(layer_sizes_.size());
  for (int s : layer_sizes_) writer->WriteI64(s);
  for (size_t l = 0; l < weights_.size(); ++l) {
    writer->WriteDoubleVec(weights_[l]);
    writer->WriteDoubleVec(biases_[l]);
  }
}

Result<Mlp> Mlp::Deserialize(BufferReader* reader) {
  uint32_t version = 0;
  BC_RETURN_IF_ERROR(reader->ReadU32(&version));
  if (version != kMlpFormatVersion) {
    return Status::InvalidModel("unsupported MLP artifact version");
  }
  Mlp mlp;
  uint64_t num_sizes = 0;
  BC_RETURN_IF_ERROR(reader->ReadU64(&num_sizes));
  if (num_sizes < 2) return Status::InvalidModel("MLP needs >= 2 layers");
  mlp.layer_sizes_.resize(num_sizes);
  for (auto& s : mlp.layer_sizes_) {
    int64_t v = 0;
    BC_RETURN_IF_ERROR(reader->ReadI64(&v));
    s = static_cast<int>(v);
    if (s <= 0) return Status::InvalidModel("MLP layer size must be > 0");
  }
  mlp.weights_.resize(num_sizes - 1);
  mlp.biases_.resize(num_sizes - 1);
  for (size_t l = 0; l + 1 < num_sizes; ++l) {
    BC_RETURN_IF_ERROR(reader->ReadDoubleVec(&mlp.weights_[l]));
    BC_RETURN_IF_ERROR(reader->ReadDoubleVec(&mlp.biases_[l]));
    const size_t expected_w = static_cast<size_t>(mlp.layer_sizes_[l]) *
                              mlp.layer_sizes_[l + 1];
    if (mlp.weights_[l].size() != expected_w ||
        mlp.biases_[l].size() !=
            static_cast<size_t>(mlp.layer_sizes_[l + 1])) {
      return Status::InvalidModel("MLP weight shape mismatch");
    }
  }
  return mlp;
}

}  // namespace bytecard::cardest
