#ifndef BYTECARD_CARDEST_NDV_FREQ_PROFILE_H_
#define BYTECARD_CARDEST_NDV_FREQ_PROFILE_H_

#include <vector>

#include "stats/ndv_classic.h"

namespace bytecard::cardest {

// The RBX "frequency profile" feature (paper §4.3): a compact, workload-
// independent representation of a sample's value-frequency distribution.
//
// Layout (kFrequencyProfileDim doubles):
//   [0..7]   log1p(f_j) for exact frequencies j = 1..8
//   [8..12]  log1p(sum of f_j) over geometric ranges (9-16], (16-32],
//            (32-64], (64-128], (128, inf)
//   [13]     log1p(sample distinct count d)
//   [14]     log1p(sample size n)
//   [15]     log1p(population size N)
//   [16]     sampling rate n/N
inline constexpr int kFrequencyProfileDim = 17;

std::vector<double> BuildFrequencyProfile(const stats::SampleFrequencies& s);

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_NDV_FREQ_PROFILE_H_
