#ifndef BYTECARD_CARDEST_NDV_MLP_H_
#define BYTECARD_CARDEST_NDV_MLP_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"

namespace bytecard::cardest {

// Dense feed-forward network (ReLU hidden activations, linear scalar output)
// with in-process Adam training — the inference and training engine behind
// RBX. Deliberately small: the paper's model-selection criterion for
// physical optimization prefers compact models with sub-millisecond
// inference over deep architectures.
class Mlp {
 public:
  struct TrainConfig {
    double learning_rate = 1e-3;
    int epochs = 60;
    int batch_size = 64;
    // Loss weight applied when the prediction is *below* the target; > 1
    // implements the paper's asymmetric underestimation penalty used in RBX
    // calibration fine-tuning.
    double underestimation_penalty = 1.0;
    uint64_t seed = 7;
  };

  Mlp() = default;

  // `layer_sizes` = {input, hidden..., output}; output must be 1.
  // Xavier-uniform initialization.
  static Mlp Create(const std::vector<int>& layer_sizes, uint64_t seed);

  // Scalar regression forward pass.
  double Predict(const std::vector<double>& input) const;

  // Minibatch Adam on (inputs, targets); returns final mean training loss.
  double Train(const std::vector<std::vector<double>>& inputs,
               const std::vector<double>& targets, const TrainConfig& config);

  int input_dim() const {
    return layer_sizes_.empty() ? 0 : layer_sizes_.front();
  }
  int num_layers() const {
    return static_cast<int>(layer_sizes_.size()) - 1;
  }
  int64_t num_parameters() const;

  // Health check for the Model Validator: all weights finite.
  Status ValidateWeights() const;

  void Serialize(BufferWriter* writer) const;
  static Result<Mlp> Deserialize(BufferReader* reader);

 private:
  // weights_[l] is row-major [out][in]; biases_[l] has out entries.
  std::vector<int> layer_sizes_;
  std::vector<std::vector<double>> weights_;
  std::vector<std::vector<double>> biases_;
};

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_NDV_MLP_H_
