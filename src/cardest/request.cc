#include "cardest/request.h"

#include <algorithm>
#include <numeric>

#include "cardest/route_class.h"

namespace bytecard::cardest {

// ---------------------------------------------------------------------------
// Canonical tokens
// ---------------------------------------------------------------------------

std::string PredicateToken(const minihouse::ColumnPredicate& pred) {
  std::string token = std::to_string(pred.column) + ":" +
                      std::to_string(static_cast<int>(pred.op)) + ":" +
                      std::to_string(pred.operand) + ":" +
                      std::to_string(pred.operand2);
  if (!pred.in_list.empty()) {
    token += ":";
    for (size_t i = 0; i < pred.in_list.size(); ++i) {
      if (i > 0) token += ",";
      token += std::to_string(pred.in_list[i]);
    }
  }
  return token;
}

std::string TableKey(const minihouse::Table& table,
                     const minihouse::Conjunction& filters) {
  std::vector<std::string> parts;
  parts.reserve(filters.size());
  for (const minihouse::ColumnPredicate& pred : filters) {
    parts.push_back(PredicateToken(pred));
  }
  std::sort(parts.begin(), parts.end());
  std::string key = table.name();
  key += "{";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) key += "&";
    key += parts[i];
  }
  key += "}";
  return key;
}

namespace {

// Table token via the session memo when one is given.
const std::string* TokenOf(const minihouse::BoundQuery& query, int table_idx,
                           InferenceSession* session, std::string* storage) {
  if (session != nullptr) return &session->TableToken(query, table_idx);
  const minihouse::BoundTableRef& ref = query.tables[table_idx];
  *storage = TableKey(*ref.table, ref.filters);
  return storage;
}

}  // namespace

std::string SubplanKey(const minihouse::BoundQuery& query,
                       const std::vector<int>& subset,
                       InferenceSession* session) {
  if (subset.size() == 1) {
    std::string storage;
    return *TokenOf(query, subset[0], session, &storage);
  }

  // Self-join disambiguation: when the query references the same
  // (table, filters) twice, the content tokens collide and different join
  // prefixes (say {fact, dim} vs {dim, fact2}) would share a key. Suffix
  // duplicated tokens with their query-table index — queries without
  // duplicate refs (the common case) keep the plain content token, so their
  // fingerprints stay comparable across queries.
  const int num_tables = query.num_tables();
  std::vector<std::string> all_tokens(num_tables);
  std::map<std::string, int> token_counts;
  for (int t = 0; t < num_tables; ++t) {
    std::string storage;
    all_tokens[t] = *TokenOf(query, t, session, &storage);
    ++token_counts[all_tokens[t]];
  }

  std::vector<std::string> table_tokens;  // indexed by position in `subset`
  table_tokens.reserve(subset.size());
  for (int t : subset) {
    std::string token = all_tokens[t];
    if (token_counts[token] > 1) token += "#" + std::to_string(t);
    table_tokens.push_back(std::move(token));
  }

  // Map query-table index -> its canonical token, for edge normalization.
  auto token_of = [&](int query_table) -> const std::string* {
    for (size_t i = 0; i < subset.size(); ++i) {
      if (subset[i] == query_table) return &table_tokens[i];
    }
    return nullptr;
  };

  std::vector<std::string> edge_tokens;
  for (const minihouse::JoinEdge& e : query.joins) {
    const std::string* lt = token_of(e.left_table);
    const std::string* rt = token_of(e.right_table);
    if (lt == nullptr || rt == nullptr) continue;  // edge leaves the subset
    std::string a = *lt + "." + std::to_string(e.left_column);
    std::string b = *rt + "." + std::to_string(e.right_column);
    if (b < a) std::swap(a, b);  // direction-independent
    edge_tokens.push_back(a + "=" + b);
  }

  std::sort(table_tokens.begin(), table_tokens.end());
  std::sort(edge_tokens.begin(), edge_tokens.end());
  std::string key = "J[";
  for (size_t i = 0; i < table_tokens.size(); ++i) {
    if (i > 0) key += ",";
    key += table_tokens[i];
  }
  key += ";";
  for (size_t i = 0; i < edge_tokens.size(); ++i) {
    if (i > 0) key += ",";
    key += edge_tokens[i];
  }
  key += "]";
  return key;
}

std::string GroupNdvKey(const minihouse::BoundQuery& query,
                        InferenceSession* session) {
  std::vector<int> scratch;
  const std::vector<int>* all;
  if (session != nullptr) {
    all = &session->AllTables(query.num_tables());
  } else {
    scratch.resize(query.tables.size());
    std::iota(scratch.begin(), scratch.end(), 0);
    all = &scratch;
  }
  std::string key = "G[";
  key += SubplanKey(query, *all, session);
  std::vector<std::string> group_tokens;
  group_tokens.reserve(query.group_by.size());
  for (const minihouse::GroupKeyRef& g : query.group_by) {
    group_tokens.push_back(query.tables[g.table].table->name() + "." +
                           std::to_string(g.column));
  }
  std::sort(group_tokens.begin(), group_tokens.end());
  for (const std::string& tok : group_tokens) {
    key += ";";
    key += tok;
  }
  key += "]";
  return key;
}

// ---------------------------------------------------------------------------
// CardEstRequest
// ---------------------------------------------------------------------------

CardEstRequest CardEstRequest::Selectivity(
    const minihouse::Table& table, const minihouse::Conjunction& filters) {
  CardEstRequest req;
  req.target = CardEstTarget::kSelectivity;
  req.table = &table;
  req.filters = &filters;
  return req;
}

CardEstRequest CardEstRequest::JoinCount(const minihouse::BoundQuery& query,
                                         const std::vector<int>& table_set) {
  CardEstRequest req;
  req.target = CardEstTarget::kJoinCount;
  req.query = &query;
  req.table_set = &table_set;
  return req;
}

CardEstRequest CardEstRequest::Count(const minihouse::BoundQuery& query) {
  CardEstRequest req;
  req.target = CardEstTarget::kJoinCount;
  req.query = &query;
  req.all_tables = true;
  return req;
}

CardEstRequest CardEstRequest::GroupNdv(const minihouse::BoundQuery& query) {
  CardEstRequest req;
  req.target = CardEstTarget::kGroupNdv;
  req.query = &query;
  req.all_tables = true;
  return req;
}

CardEstRequest CardEstRequest::ColumnNdv(
    const minihouse::Table& table, int column,
    const minihouse::Conjunction& filters) {
  CardEstRequest req;
  req.target = CardEstTarget::kColumnNdv;
  req.table = &table;
  req.ndv_column = column;
  req.filters = &filters;
  return req;
}

CardEstRequest CardEstRequest::Disjunction(
    const minihouse::Table& table,
    const std::vector<minihouse::Conjunction>& disjuncts) {
  CardEstRequest req;
  req.target = CardEstTarget::kDisjunction;
  req.table = &table;
  req.disjuncts = &disjuncts;
  return req;
}

const std::vector<int>& CardEstRequest::ResolveTables(
    InferenceSession* session, std::vector<int>* scratch) const {
  if (table_set != nullptr) return *table_set;
  const int n = query == nullptr ? 0 : query->num_tables();
  if (session != nullptr) return session->AllTables(n);
  scratch->resize(n);
  std::iota(scratch->begin(), scratch->end(), 0);
  return *scratch;
}

std::string CardEstRequest::Fingerprint(InferenceSession* session) const {
  switch (target) {
    case CardEstTarget::kSelectivity:
      return TableKey(*table, *filters);
    case CardEstTarget::kJoinCount: {
      std::vector<int> scratch;
      return SubplanKey(*query, ResolveTables(session, &scratch), session);
    }
    case CardEstTarget::kGroupNdv:
      return GroupNdvKey(*query, session);
    case CardEstTarget::kColumnNdv:
      return "V[" + TableKey(*table, *filters) + ";" +
             std::to_string(ndv_column) + "]";
    case CardEstTarget::kDisjunction: {
      // Each disjunct canonicalized like a table key body; bodies sorted so
      // the fingerprint is independent of disjunct order.
      std::vector<std::string> bodies;
      bodies.reserve(disjuncts->size());
      for (const minihouse::Conjunction& d : *disjuncts) {
        std::vector<std::string> parts;
        parts.reserve(d.size());
        for (const minihouse::ColumnPredicate& pred : d) {
          parts.push_back(PredicateToken(pred));
        }
        std::sort(parts.begin(), parts.end());
        std::string body = "{";
        for (size_t i = 0; i < parts.size(); ++i) {
          if (i > 0) body += "&";
          body += parts[i];
        }
        body += "}";
        bodies.push_back(std::move(body));
      }
      std::sort(bodies.begin(), bodies.end());
      std::string key = "O[" + table->name() + ";";
      for (size_t i = 0; i < bodies.size(); ++i) {
        if (i > 0) key += "|";
        key += bodies[i];
      }
      key += "]";
      return key;
    }
  }
  return std::string();
}

// ---------------------------------------------------------------------------
// InferenceSession
// ---------------------------------------------------------------------------

bool InferenceSession::LookupScalar(const std::string& key, double* value,
                                    bool* was_fallback) {
  auto it = scalars_.find(key);
  if (it == scalars_.end()) return false;
  ++stats_.probe_cache_hits;
  *value = it->second.value;
  *was_fallback = it->second.was_fallback;
  return true;
}

void InferenceSession::StoreScalar(const std::string& key, double value,
                                   bool was_fallback) {
  ++stats_.probe_cache_misses;
  scalars_[key] = ScalarEntry{value, was_fallback};
}

const std::vector<double>* InferenceSession::LookupBuckets(
    const std::string& key, double* total_out) {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return nullptr;
  ++stats_.probe_cache_hits;
  *total_out = it->second.total;
  return &it->second.counts;
}

void InferenceSession::StoreBuckets(const std::string& key,
                                    std::vector<double> counts, double total) {
  ++stats_.probe_cache_misses;
  buckets_[key] = BucketEntry{std::move(counts), total};
}

const std::vector<int>& InferenceSession::AllTables(int n) {
  if (static_cast<int>(all_tables_.size()) < n) {
    const int old = static_cast<int>(all_tables_.size());
    all_tables_.resize(n);
    std::iota(all_tables_.begin() + old, all_tables_.end(), old);
  } else if (static_cast<int>(all_tables_.size()) > n) {
    all_tables_.resize(n);
  }
  return all_tables_;
}

const std::string& InferenceSession::TableToken(
    const minihouse::BoundQuery& query, int table_idx) {
  const auto key = std::make_pair(static_cast<const void*>(&query), table_idx);
  auto it = table_tokens_.find(key);
  if (it != table_tokens_.end()) return it->second;
  const minihouse::BoundTableRef& ref = query.tables[table_idx];
  return table_tokens_
      .emplace(key, TableKey(*ref.table, ref.filters))
      .first->second;
}

const std::string& InferenceSession::TableShapeToken(
    const minihouse::BoundQuery& query, int table_idx) {
  const auto key = std::make_pair(static_cast<const void*>(&query), table_idx);
  auto it = table_shapes_.find(key);
  if (it != table_shapes_.end()) return it->second;
  const minihouse::BoundTableRef& ref = query.tables[table_idx];
  return table_shapes_
      .emplace(key, TableShape(*ref.table, ref.filters))
      .first->second;
}

}  // namespace bytecard::cardest
