#ifndef BYTECARD_CARDEST_ROUTE_CLASS_H_
#define BYTECARD_CARDEST_ROUTE_CLASS_H_

#include <string>
#include <vector>

#include "cardest/request.h"
#include "minihouse/query.h"

namespace bytecard::cardest {

// --- Route classes ------------------------------------------------------------
// A route class is the *template* identity of an estimation request: the
// fingerprint grammar of request.h with every literal operand dropped, so
// queries that differ only in constants collapse into one class. Two queries
// asking "users WHERE age > ?" land in the same class no matter the bound
// value; the adaptive router (bytecard/routing) learns one estimator-family
// decision per class from the feedback trace and applies it to every future
// instantiation of the template.
//
// The shape grammar mirrors the fingerprint grammar token for token —
// including sorted predicate/table/edge tokens and the self-join "#<idx>"
// disambiguation — but uses parentheses instead of braces/brackets so a
// shape can never be mistaken for (or collide with) a fingerprint:
//   predicate shape  "col:op[:in]"           (operands dropped; ":in" marks
//                     an IN-list predicate — list membership is part of the
//                     template even though the members are not)
//   table shape      "name(s1&s2&...)"        predicate shapes sorted
//   join shape       "J(t1,t2,...;e1,...)"    table shapes + normalized edges
//   group NDV        "G(<join-of-all>;tbl.col;...)"
//   column NDV       "V(<table>;col)"
//   disjunction      "O(name;(d1)|(d2)|...)"
std::string PredicateShapeToken(const minihouse::ColumnPredicate& pred);
std::string TableShape(const minihouse::Table& table,
                       const minihouse::Conjunction& filters);
std::string SubplanShape(const minihouse::BoundQuery& query,
                         const std::vector<int>& subset,
                         InferenceSession* session = nullptr);
std::string GroupShape(const minihouse::BoundQuery& query,
                       InferenceSession* session = nullptr);

// The route class of any request shape. Single-table join subsets reduce to
// the bare table shape (like SubplanKey), so a scan question asked through
// the join path shares its class with the same question asked directly.
// `session` memoizes per-table shape tokens (see
// InferenceSession::TableShapeToken); the returned string is byte-identical
// with or without it.
std::string RouteClassOf(const CardEstRequest& request,
                         InferenceSession* session = nullptr);

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_ROUTE_CLASS_H_
