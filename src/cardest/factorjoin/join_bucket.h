#ifndef BYTECARD_CARDEST_FACTORJOIN_JOIN_BUCKET_H_
#define BYTECARD_CARDEST_FACTORJOIN_JOIN_BUCKET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serde.h"
#include "minihouse/column.h"

namespace bytecard::cardest {

// A (table, column) participant of a join key group.
struct JoinKeyRef {
  std::string table;
  int column = -1;

  bool operator==(const JoinKeyRef& other) const = default;
  bool operator<(const JoinKeyRef& other) const {
    return table != other.table ? table < other.table
                                : column < other.column;
  }
};

// Equi-height buckets over the *joint* domain of a join key group (paper
// §4.2, "Join-Bucket Construction"): every table sharing the group
// discretizes its key column with these same boundaries, so per-bucket
// quantities are directly comparable across tables.
class JoinBucketizer {
 public:
  JoinBucketizer() = default;

  // Builds from the union of all member columns' values, equi-height, built
  // from the equi-height histograms ByteHouse's optimizer already maintains.
  static JoinBucketizer Build(
      const std::vector<const minihouse::Column*>& columns, int num_buckets);

  int num_buckets() const { return static_cast<int>(upper_bounds_.size()); }
  int BucketOf(int64_t value) const;

  // Inclusive per-bucket upper bounds, ascending; feeds
  // BnTrainOptions::join_column_boundaries.
  const std::vector<int64_t>& upper_bounds() const { return upper_bounds_; }

  void Serialize(BufferWriter* writer) const;
  static Result<JoinBucketizer> Deserialize(BufferReader* reader);

 private:
  std::vector<int64_t> upper_bounds_;
};

// Per-(table, key column) bucket statistics gathered at training time:
// row count, maximum single-value frequency, and distinct key count in each
// bucket — everything both of FactorJoin's per-bucket combiners need (the
// paper's upper bound uses max_freq; the bucket-uniform estimate uses
// distinct).
struct BucketStats {
  std::vector<double> count;
  std::vector<double> max_freq;
  std::vector<double> distinct;

  static BucketStats Build(const minihouse::Column& column,
                           const JoinBucketizer& bucketizer);

  void Serialize(BufferWriter* writer) const;
  static Result<BucketStats> Deserialize(BufferReader* reader);
};

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_FACTORJOIN_JOIN_BUCKET_H_
