#ifndef BYTECARD_CARDEST_FACTORJOIN_FACTOR_GRAPH_H_
#define BYTECARD_CARDEST_FACTORJOIN_FACTOR_GRAPH_H_

#include <utility>
#include <vector>

#include "minihouse/query.h"

namespace bytecard::cardest {

// The query-time factor graph FactorJoin infers over (paper §4.2): variable
// nodes are join key groups (equivalence classes of join columns under the
// query's equi-join edges), factor nodes are the tables that constrain them.
// Built dynamically per query from the join relationships, as the paper
// describes.
struct QueryKeyGroup {
  // (table index into query.tables, schema column index) participants.
  std::vector<std::pair<int, int>> members;

  bool Contains(int table, int column) const {
    for (const auto& [t, c] : members) {
      if (t == table && c == column) return true;
    }
    return false;
  }

  // True if this group has any member on `table`.
  int ColumnOn(int table) const {
    for (const auto& [t, c] : members) {
      if (t == table) return c;
    }
    return -1;
  }
};

// Connected components of join columns restricted to `subset`'s tables.
std::vector<QueryKeyGroup> BuildQueryKeyGroups(
    const minihouse::BoundQuery& query, const std::vector<int>& subset);

// A traversal order of `subset` such that each table after the first joins
// at least one earlier table (BFS over the join graph). Tables unreachable
// from the first subset element are appended at the end.
std::vector<int> JoinSpanningOrder(const minihouse::BoundQuery& query,
                                   const std::vector<int>& subset);

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_FACTORJOIN_FACTOR_GRAPH_H_
