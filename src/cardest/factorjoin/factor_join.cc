#include "cardest/factorjoin/factor_join.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/logging.h"

namespace bytecard::cardest {

namespace {
constexpr uint32_t kFjFormatVersion = 2;
}  // namespace

// ---------------------------------------------------------------------------
// FactorJoinModel
// ---------------------------------------------------------------------------

Result<FactorJoinModel> FactorJoinModel::Train(
    const minihouse::Database& db,
    const std::vector<std::vector<JoinKeyRef>>& key_groups, int num_buckets) {
  FactorJoinModel model;
  for (const std::vector<JoinKeyRef>& members : key_groups) {
    if (members.empty()) continue;
    KeyGroup group;
    group.members = members;

    std::vector<const minihouse::Column*> columns;
    for (const JoinKeyRef& ref : members) {
      BC_ASSIGN_OR_RETURN(const minihouse::Table* table,
                          db.FindTable(ref.table));
      if (ref.column < 0 || ref.column >= table->num_columns()) {
        return Status::InvalidArgument("join key column out of range for '" +
                                       ref.table + "'");
      }
      columns.push_back(&table->column(ref.column));
    }
    group.buckets = JoinBucketizer::Build(columns, num_buckets);

    for (size_t i = 0; i < members.size(); ++i) {
      model.stats_[{members[i].table, members[i].column}] =
          BucketStats::Build(*columns[i], group.buckets);
    }
    model.groups_.push_back(std::move(group));
  }
  return model;
}

int FactorJoinModel::GroupOf(const std::string& table, int column) const {
  for (int g = 0; g < num_groups(); ++g) {
    for (const JoinKeyRef& ref : groups_[g].members) {
      if (ref.table == table && ref.column == column) return g;
    }
  }
  return -1;
}

Result<std::vector<int64_t>> FactorJoinModel::BoundariesFor(
    const std::string& table, int column) const {
  const int g = GroupOf(table, column);
  if (g < 0) {
    return Status::NotFound("no join key group for " + table + "." +
                            std::to_string(column));
  }
  return groups_[g].buckets.upper_bounds();
}

const BucketStats* FactorJoinModel::FindStats(const std::string& table,
                                              int column) const {
  auto it = stats_.find({table, column});
  return it == stats_.end() ? nullptr : &it->second;
}

BucketStats* FactorJoinModel::FindMutableStats(const std::string& table,
                                               int column) {
  auto it = stats_.find({table, column});
  return it == stats_.end() ? nullptr : &it->second;
}

void FactorJoinModel::Serialize(BufferWriter* writer) const {
  writer->WriteU32(kFjFormatVersion);
  writer->WriteU64(groups_.size());
  for (const KeyGroup& group : groups_) {
    writer->WriteU64(group.members.size());
    for (const JoinKeyRef& ref : group.members) {
      writer->WriteString(ref.table);
      writer->WriteI64(ref.column);
    }
    group.buckets.Serialize(writer);
  }
  writer->WriteU64(stats_.size());
  for (const auto& [key, stats] : stats_) {
    writer->WriteString(key.first);
    writer->WriteI64(key.second);
    stats.Serialize(writer);
  }
}

Result<FactorJoinModel> FactorJoinModel::Deserialize(BufferReader* reader) {
  uint32_t version = 0;
  BC_RETURN_IF_ERROR(reader->ReadU32(&version));
  if (version != kFjFormatVersion) {
    return Status::InvalidModel("unsupported FactorJoin artifact version");
  }
  FactorJoinModel model;
  uint64_t num_groups = 0;
  BC_RETURN_IF_ERROR(reader->ReadU64(&num_groups));
  model.groups_.resize(num_groups);
  for (auto& group : model.groups_) {
    uint64_t num_members = 0;
    BC_RETURN_IF_ERROR(reader->ReadU64(&num_members));
    group.members.resize(num_members);
    for (auto& ref : group.members) {
      BC_RETURN_IF_ERROR(reader->ReadString(&ref.table));
      int64_t column = 0;
      BC_RETURN_IF_ERROR(reader->ReadI64(&column));
      ref.column = static_cast<int>(column);
    }
    BC_ASSIGN_OR_RETURN(group.buckets, JoinBucketizer::Deserialize(reader));
  }
  uint64_t num_stats = 0;
  BC_RETURN_IF_ERROR(reader->ReadU64(&num_stats));
  for (uint64_t i = 0; i < num_stats; ++i) {
    std::string table;
    int64_t column = 0;
    BC_RETURN_IF_ERROR(reader->ReadString(&table));
    BC_RETURN_IF_ERROR(reader->ReadI64(&column));
    BC_ASSIGN_OR_RETURN(BucketStats stats, BucketStats::Deserialize(reader));
    model.stats_[{table, static_cast<int>(column)}] = std::move(stats);
  }
  return model;
}

// ---------------------------------------------------------------------------
// FactorJoinEstimator
// ---------------------------------------------------------------------------

std::vector<double> FactorJoinEstimator::FilteredBucketCounts(
    const minihouse::BoundQuery& query, int table_idx, int column, int group,
    double* count_out, InferenceSession* session) const {
  const minihouse::BoundTableRef& ref = query.tables[table_idx];

  // The join-order search asks for the same (table, filters, column)
  // marginal for every candidate subset; the per-query inference session
  // memoizes it so FactorJoin's planning overhead stays flat in the number
  // of subsets. The session is owned by the calling query thread, keeping
  // inference lock-free (paper §4.1).
  std::string key;
  if (session != nullptr) {
    key = "fjb:" + session->TableToken(query, table_idx) + ":" +
          std::to_string(column);
    double total = 0.0;
    if (const std::vector<double>* hit = session->LookupBuckets(key, &total)) {
      *count_out = total;
      return *hit;
    }
  }
  const int nb = model_->groups()[group].buckets.num_buckets();
  const BucketStats* stats = model_->FindStats(ref.table->name(), column);

  double selectivity = 1.0;
  auto bn_it = bn_contexts_->find(ref.table->name());
  const BnInferenceContext* bn =
      bn_it == bn_contexts_->end() ? nullptr : bn_it->second;

  if (bn != nullptr) {
    selectivity = bn->EstimateSelectivity(ref.filters);
    // Preferred path: the BN's joint marginal over the join column, whose
    // bins coincide with the join buckets by construction.
    Result<std::vector<double>> marginal =
        bn->MarginalWithEvidence(ref.filters, column);
    if (marginal.ok() &&
        static_cast<int>(marginal.value().size()) == nb) {
      std::vector<double> counts = std::move(marginal).value();
      const double rows = static_cast<double>(ref.table->num_rows());
      double total = 0.0;
      for (int b = 0; b < nb; ++b) {
        counts[b] *= rows;
        // Consistency clamp: CPD smoothing can leak phantom mass into
        // sparse buckets, but a filtered bucket can never hold more rows
        // than the bucket holds unfiltered.
        if (stats != nullptr &&
            static_cast<int>(stats->count.size()) == nb) {
          counts[b] = std::min(counts[b], stats->count[b]);
        }
        total += counts[b];
      }
      *count_out = total;
      if (session != nullptr) session->StoreBuckets(key, counts, total);
      return counts;
    }
  }

  // Fallback: scale unfiltered bucket counts by the overall selectivity
  // (independence between filter and join key).
  std::vector<double> counts(nb, 0.0);
  double total = 0.0;
  if (stats != nullptr &&
      static_cast<int>(stats->count.size()) == nb) {
    for (int b = 0; b < nb; ++b) {
      counts[b] = stats->count[b] * selectivity;
      total += counts[b];
    }
  } else {
    const double rows =
        static_cast<double>(ref.table->num_rows()) * selectivity;
    for (int b = 0; b < nb; ++b) counts[b] = rows / nb;
    total = rows;
  }
  *count_out = total;
  if (session != nullptr) session->StoreBuckets(key, counts, total);
  return counts;
}

double FactorJoinEstimator::EstimateJoinCount(
    const minihouse::BoundQuery& query, const std::vector<int>& subset,
    InferenceSession* session) const {
  if (subset.empty()) return 0.0;

  // Raw BN-filtered row count of one table. Memoized under "fjsel:" —
  // distinct from the snapshot's health-aware "sel:" entries, which may be
  // served by the fallback estimator instead of the BN.
  auto table_count = [&](int t) {
    const minihouse::BoundTableRef& ref = query.tables[t];
    std::string key;
    if (session != nullptr) {
      key = "fjsel:" + session->TableToken(query, t);
      double value = 0.0;
      bool was_fallback = false;
      if (session->LookupScalar(key, &value, &was_fallback)) return value;
    }
    auto it = bn_contexts_->find(ref.table->name());
    const double sel = it == bn_contexts_->end()
                           ? 1.0
                           : it->second->EstimateSelectivity(ref.filters);
    const double count = sel * static_cast<double>(ref.table->num_rows());
    if (session != nullptr) session->StoreScalar(key, count, false);
    return count;
  };

  if (subset.size() == 1) return table_count(subset[0]);

  const std::vector<QueryKeyGroup> key_groups =
      BuildQueryKeyGroups(query, subset);
  const std::vector<int> order = JoinSpanningOrder(query, subset);

  // Per query-key-group state over the partial join V.
  struct GroupState {
    bool active = false;
    int model_group = -1;
    std::vector<double> cnt;  // filtered rows of V per bucket
    std::vector<double> mf;   // per-bucket max key frequency bound in V
    std::vector<double> d;    // per-bucket distinct-key estimate in V
  };
  std::vector<GroupState> state(key_groups.size());

  auto model_group_of = [&](const QueryKeyGroup& g) {
    for (const auto& [t, c] : g.members) {
      const int mg = model_->GroupOf(query.tables[t].table->name(), c);
      if (mg >= 0) return mg;
    }
    return -1;
  };

  // Per-bucket stats of table t's key `column`, with safe fallbacks when the
  // model lacks stats for this occurrence.
  auto bucket_stat = [&](const BucketStats* stats,
                         const std::vector<double>& cnt, int b,
                         auto member) {
    if (stats != nullptr &&
        static_cast<int>((stats->*member).size()) ==
            static_cast<int>(cnt.size())) {
      return std::max(1.0, (stats->*member)[b]);
    }
    return std::max(1.0, cnt[b]);
  };

  auto activate_for_table = [&](int t, double scale_to) {
    // Initializes every group with a member on t from t's own distribution,
    // scaled so totals match the current partial-join cardinality share.
    for (size_t gi = 0; gi < key_groups.size(); ++gi) {
      GroupState& gs = state[gi];
      if (gs.active) continue;
      const int column = key_groups[gi].ColumnOn(t);
      if (column < 0) continue;
      gs.model_group = model_group_of(key_groups[gi]);
      if (gs.model_group < 0) continue;  // untrained key: stays inactive
      double total = 0.0;
      gs.cnt = FilteredBucketCounts(query, t, column, gs.model_group, &total,
                                    session);
      const BucketStats* stats =
          model_->FindStats(query.tables[t].table->name(), column);
      const int nb = static_cast<int>(gs.cnt.size());
      gs.mf.assign(nb, 0.0);
      gs.d.assign(nb, 0.0);
      for (int b = 0; b < nb; ++b) {
        gs.mf[b] = bucket_stat(stats, gs.cnt, b, &BucketStats::max_freq);
        // Distinct keys surviving the filter cannot exceed the surviving
        // row count.
        gs.d[b] = std::min(bucket_stat(stats, gs.cnt, b,
                                       &BucketStats::distinct),
                           std::max(1.0, gs.cnt[b]));
      }
      if (total > 0.0 && scale_to > 0.0) {
        const double f = scale_to / total;
        // Amplification from joins already applied to V.
        if (std::abs(f - 1.0) > 1e-12) {
          for (double& c : gs.cnt) c *= f;
        }
      }
      gs.active = true;
    }
  };

  double card = table_count(order[0]);
  activate_for_table(order[0], card);

  for (size_t step = 1; step < order.size(); ++step) {
    const int t = order[step];
    const double t_count = std::max(table_count(t), 1e-9);

    // Shared groups: active groups with a member on t. Each yields an
    // estimate for this join step; take the tightest.
    double best_card = -1.0;
    int best_group = -1;
    std::vector<double> best_bucket_card;
    std::vector<double> best_bucket_d;

    for (size_t gi = 0; gi < key_groups.size(); ++gi) {
      GroupState& gs = state[gi];
      const int column = key_groups[gi].ColumnOn(t);
      if (!gs.active || column < 0) continue;
      double t_total = 0.0;
      const std::vector<double> cnt_t =
          FilteredBucketCounts(query, t, column, gs.model_group, &t_total,
                               session);
      const BucketStats* stats =
          model_->FindStats(query.tables[t].table->name(), column);
      const int nb = static_cast<int>(gs.cnt.size());
      if (static_cast<int>(cnt_t.size()) != nb) continue;

      std::vector<double> bucket_card(nb, 0.0);
      std::vector<double> bucket_d(nb, 1.0);
      double total = 0.0;
      for (int b = 0; b < nb; ++b) {
        const double mf_t =
            bucket_stat(stats, cnt_t, b, &BucketStats::max_freq);
        const double d_t = std::min(
            bucket_stat(stats, cnt_t, b, &BucketStats::distinct),
            std::max(1.0, cnt_t[b]));
        if (gs.cnt[b] <= 0.0 || cnt_t[b] <= 0.0) {
          bucket_card[b] = 0.0;
          bucket_d[b] = 1.0;
          continue;
        }
        if (mode_ == FactorJoinMode::kUpperBound) {
          // FactorJoin per-bucket probabilistic bound.
          bucket_card[b] = std::min(gs.cnt[b] * mf_t, cnt_t[b] * gs.mf[b]);
        } else {
          // Per-bucket join uniformity over the bucket's key domain.
          bucket_card[b] =
              gs.cnt[b] * cnt_t[b] / std::max(gs.d[b], d_t);
        }
        // Keys surviving the join exist on both sides.
        bucket_d[b] = std::max(1.0, std::min(gs.d[b], d_t));
        total += bucket_card[b];
      }
      if (best_card < 0.0 || total < best_card) {
        best_card = total;
        best_group = static_cast<int>(gi);
        best_bucket_card = std::move(bucket_card);
        best_bucket_d = std::move(bucket_d);
      }
    }

    double new_card;
    if (best_group < 0) {
      // No trained shared key (shouldn't happen on connected, trained
      // schemas): degrade to the Selinger-free product bound.
      new_card = card * t_count;
    } else {
      new_card = std::max(best_card, 0.0);
    }

    // Rescale all active group states to the new cardinality; install the
    // winning group's per-bucket distribution and fold t's statistics in.
    const double old_card = std::max(card, 1e-9);
    for (size_t gi = 0; gi < key_groups.size(); ++gi) {
      GroupState& gs = state[gi];
      if (!gs.active) continue;
      if (static_cast<int>(gi) == best_group) {
        const int column = key_groups[gi].ColumnOn(t);
        const BucketStats* stats =
            model_->FindStats(query.tables[t].table->name(), column);
        const int nb = static_cast<int>(gs.cnt.size());
        gs.cnt = best_bucket_card;
        gs.d = best_bucket_d;
        for (int b = 0; b < nb; ++b) {
          gs.mf[b] *= bucket_stat(stats, gs.cnt, b, &BucketStats::max_freq);
        }
      } else {
        const double f = new_card / old_card;
        for (double& c : gs.cnt) c *= f;
      }
    }
    card = new_card;
    // Groups first seen on t inherit t's distribution amplified to `card`.
    activate_for_table(t, card);
  }
  return std::max(card, 0.0);
}

}  // namespace bytecard::cardest
