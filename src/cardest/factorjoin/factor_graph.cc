#include "cardest/factorjoin/factor_graph.h"

#include <algorithm>
#include <map>

namespace bytecard::cardest {

namespace {

bool InSubset(const std::vector<int>& subset, int t) {
  return std::find(subset.begin(), subset.end(), t) != subset.end();
}

}  // namespace

std::vector<QueryKeyGroup> BuildQueryKeyGroups(
    const minihouse::BoundQuery& query, const std::vector<int>& subset) {
  // Union-find over (table, column) pairs linked by in-subset join edges.
  std::map<std::pair<int, int>, int> index;
  std::vector<int> parent;

  auto find_or_add = [&](int t, int c) {
    auto [it, inserted] = index.try_emplace({t, c}, parent.size());
    if (inserted) parent.push_back(static_cast<int>(parent.size()));
    return it->second;
  };
  auto find_root = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (const minihouse::JoinEdge& e : query.joins) {
    if (!InSubset(subset, e.left_table) || !InSubset(subset, e.right_table)) {
      continue;
    }
    const int a = find_or_add(e.left_table, e.left_column);
    const int b = find_or_add(e.right_table, e.right_column);
    parent[find_root(a)] = find_root(b);
  }

  std::map<int, QueryKeyGroup> groups;
  for (const auto& [key, idx] : index) {
    groups[find_root(idx)].members.push_back(key);
  }
  std::vector<QueryKeyGroup> out;
  out.reserve(groups.size());
  for (auto& [_, g] : groups) out.push_back(std::move(g));
  return out;
}

std::vector<int> JoinSpanningOrder(const minihouse::BoundQuery& query,
                                   const std::vector<int>& subset) {
  std::vector<int> order;
  if (subset.empty()) return order;
  std::vector<bool> visited(query.num_tables(), false);

  order.push_back(subset[0]);
  visited[subset[0]] = true;
  for (size_t i = 0; i < order.size(); ++i) {
    const int v = order[i];
    for (const minihouse::JoinEdge& e : query.joins) {
      int other = -1;
      if (e.left_table == v) other = e.right_table;
      if (e.right_table == v) other = e.left_table;
      if (other < 0 || visited[other] || !InSubset(subset, other)) continue;
      visited[other] = true;
      order.push_back(other);
    }
  }
  for (int t : subset) {
    if (!visited[t]) {
      visited[t] = true;
      order.push_back(t);
    }
  }
  return order;
}

}  // namespace bytecard::cardest
