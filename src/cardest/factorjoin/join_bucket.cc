#include "cardest/factorjoin/join_bucket.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/logging.h"

namespace bytecard::cardest {

JoinBucketizer JoinBucketizer::Build(
    const std::vector<const minihouse::Column*>& columns, int num_buckets) {
  JoinBucketizer bucketizer;
  std::vector<int64_t> values;
  for (const minihouse::Column* col : columns) {
    for (int64_t i = 0; i < col->num_rows(); ++i) {
      values.push_back(col->NumericAt(i));
    }
  }
  if (values.empty() || num_buckets <= 0) return bucketizer;
  std::sort(values.begin(), values.end());

  const int64_t n = static_cast<int64_t>(values.size());
  const int64_t target =
      std::max<int64_t>(1, (n + num_buckets - 1) / num_buckets);
  int64_t i = 0;
  while (i < n) {
    int64_t j = std::min(n, i + target);
    while (j < n && values[j] == values[j - 1]) ++j;
    bucketizer.upper_bounds_.push_back(values[j - 1]);
    i = j;
  }
  // The last bucket absorbs everything above the observed domain, so that
  // every consumer (BN discretizers built from these boundaries, BucketOf)
  // agrees on a single bucket count.
  bucketizer.upper_bounds_.back() = std::numeric_limits<int64_t>::max();
  return bucketizer;
}

int JoinBucketizer::BucketOf(int64_t value) const {
  BC_DCHECK(!upper_bounds_.empty());
  auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  if (it == upper_bounds_.end()) {
    return num_buckets() - 1;  // clamp values above the observed domain
  }
  return static_cast<int>(it - upper_bounds_.begin());
}

void JoinBucketizer::Serialize(BufferWriter* writer) const {
  writer->WriteI64Vec(upper_bounds_);
}

Result<JoinBucketizer> JoinBucketizer::Deserialize(BufferReader* reader) {
  JoinBucketizer bucketizer;
  BC_RETURN_IF_ERROR(reader->ReadI64Vec(&bucketizer.upper_bounds_));
  return bucketizer;
}

BucketStats BucketStats::Build(const minihouse::Column& column,
                               const JoinBucketizer& bucketizer) {
  BucketStats stats;
  const int nb = bucketizer.num_buckets();
  stats.count.assign(nb, 0.0);
  stats.max_freq.assign(nb, 0.0);
  stats.distinct.assign(nb, 0.0);

  // Value frequency map, then per-bucket max/accumulate.
  std::unordered_map<int64_t, int64_t> freq;
  freq.reserve(static_cast<size_t>(column.num_rows()));
  for (int64_t i = 0; i < column.num_rows(); ++i) {
    ++freq[column.NumericAt(i)];
  }
  for (const auto& [value, count] : freq) {
    const int b = bucketizer.BucketOf(value);
    stats.count[b] += static_cast<double>(count);
    stats.max_freq[b] =
        std::max(stats.max_freq[b], static_cast<double>(count));
    stats.distinct[b] += 1.0;
  }
  return stats;
}

void BucketStats::Serialize(BufferWriter* writer) const {
  writer->WriteDoubleVec(count);
  writer->WriteDoubleVec(max_freq);
  writer->WriteDoubleVec(distinct);
}

Result<BucketStats> BucketStats::Deserialize(BufferReader* reader) {
  BucketStats stats;
  BC_RETURN_IF_ERROR(reader->ReadDoubleVec(&stats.count));
  BC_RETURN_IF_ERROR(reader->ReadDoubleVec(&stats.max_freq));
  BC_RETURN_IF_ERROR(reader->ReadDoubleVec(&stats.distinct));
  return stats;
}

}  // namespace bytecard::cardest
