#ifndef BYTECARD_CARDEST_FACTORJOIN_FACTOR_JOIN_H_
#define BYTECARD_CARDEST_FACTORJOIN_FACTOR_JOIN_H_

#include <map>
#include <string>
#include <vector>

#include "cardest/bayes/bayes_net.h"
#include "cardest/factorjoin/factor_graph.h"
#include "cardest/factorjoin/join_bucket.h"
#include "cardest/request.h"
#include "common/serde.h"
#include "minihouse/database.h"
#include "minihouse/query.h"

namespace bytecard::cardest {

// The offline FactorJoin artifact (paper §4.2): join-bucket boundaries for
// every join key group in the schema plus per-(table, key column) bucket
// statistics. Training is bucket construction only — the heavy distribution
// knowledge lives in the per-table BNs, which is precisely why ByteCard's
// combined training cost in Table 3 undercuts DeepDB/BayesCard.
class FactorJoinModel {
 public:
  struct KeyGroup {
    std::vector<JoinKeyRef> members;
    JoinBucketizer buckets;
  };

  FactorJoinModel() = default;

  // `key_groups`: join-pattern equivalence classes from the Model
  // Preprocessor's join-pattern collection. `num_buckets` is the paper's
  // equi-height bucket count (200 in its setup).
  static Result<FactorJoinModel> Train(
      const minihouse::Database& db,
      const std::vector<std::vector<JoinKeyRef>>& key_groups,
      int num_buckets);

  int num_groups() const { return static_cast<int>(groups_.size()); }
  const std::vector<KeyGroup>& groups() const { return groups_; }

  // Model key group containing (table, column), or -1.
  int GroupOf(const std::string& table, int column) const;

  // Bucket boundaries for a member key column (feeds BN training so the BN's
  // join-column bins coincide with the join buckets).
  Result<std::vector<int64_t>> BoundariesFor(const std::string& table,
                                             int column) const;

  const BucketStats* FindStats(const std::string& table, int column) const;

  // Mutable per-bucket stats for the incremental-maintenance path, which
  // merges ingest deltas into a private copy of the model before publishing
  // it. Never call on a model already installed in a snapshot.
  BucketStats* FindMutableStats(const std::string& table, int column);

  void Serialize(BufferWriter* writer) const;
  static Result<FactorJoinModel> Deserialize(BufferReader* reader);

 private:
  std::vector<KeyGroup> groups_;
  std::map<std::pair<std::string, int>, BucketStats> stats_;
};

// Per-bucket combiner for one join step of the factor-graph walk.
enum class FactorJoinMode {
  // Per-bucket join uniformity: cnt_V(b) * cnt_T(b) / max(d_V(b), d_T(b)).
  // The accurate default: Selinger's formula applied at bucket granularity,
  // with filtered counts from the BNs — skew lives between buckets, not
  // within them.
  kBucketUniform,
  // The paper's probabilistic upper bound:
  //   |V >< T|_b <= min( cnt_V(b) * mf_T(b),  cnt_T(b) * mf_V(b) ).
  // Never underestimates bucket-local truth; looser under heavy skew.
  kUpperBound,
};

// Online estimator: walks the query's dynamically built factor graph,
// combining per-table filtered bucket distributions (from the BN contexts)
// with the model's bucket statistics. Progressive pairwise application over
// a spanning order of the join graph.
class FactorJoinEstimator {
 public:
  // `bn_contexts` maps table name to its initialized BN inference context;
  // both referents must outlive the estimator.
  FactorJoinEstimator(
      const FactorJoinModel* model,
      const std::map<std::string, const BnInferenceContext*>* bn_contexts,
      FactorJoinMode mode = FactorJoinMode::kBucketUniform)
      : model_(model), bn_contexts_(bn_contexts), mode_(mode) {}

  // Estimated COUNT(*) of the join of `subset` under the query's filters.
  // `session` (optional) memoizes the per-table BN probes and filtered
  // bucket distributions across the many subset calls of one query's
  // join-order search; it must belong to the calling query thread.
  double EstimateJoinCount(const minihouse::BoundQuery& query,
                           const std::vector<int>& subset,
                           InferenceSession* session = nullptr) const;

 private:
  // Filtered per-bucket row counts for `table_idx`'s key `column`:
  // prefers the BN joint marginal (captures filter/key correlation); falls
  // back to scaling the unfiltered bucket counts by the BN selectivity.
  std::vector<double> FilteredBucketCounts(const minihouse::BoundQuery& query,
                                           int table_idx, int column,
                                           int group, double* count_out,
                                           InferenceSession* session) const;

  const FactorJoinModel* model_;
  const std::map<std::string, const BnInferenceContext*>* bn_contexts_;
  FactorJoinMode mode_;
};

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_FACTORJOIN_FACTOR_JOIN_H_
