#include "cardest/baselines/bayescard.h"

#include <algorithm>

#include "cardest/baselines/denorm.h"
#include "common/logging.h"

namespace bytecard::cardest {

namespace {
constexpr uint32_t kBayesCardFormatVersion = 1;
}  // namespace

Result<BayesCardModel> BayesCardModel::Train(
    const minihouse::BoundQuery& full_join, const TrainOptions& options) {
  BayesCardModel model;

  BC_ASSIGN_OR_RETURN(
      std::unique_ptr<minihouse::Table> denorm,
      BuildDenormalizedSample(full_join, options.max_base_rows,
                              options.max_output_rows, options.seed));

  for (int c = 0; c < denorm->num_columns(); ++c) {
    model.denorm_columns_.push_back(denorm->schema().column(c).name);
  }

  // Full-join population estimate: sampled join rows scaled back by the
  // per-table sampling fractions. Truncation makes this an underestimate on
  // very fat joins — acceptable for a baseline whose role in the evaluation
  // is its training cost profile.
  double inverse_rate = 1.0;
  for (const minihouse::BoundTableRef& ref : full_join.tables) {
    const double rows = static_cast<double>(ref.table->num_rows());
    const double sampled =
        std::min(rows, static_cast<double>(options.max_base_rows));
    if (sampled > 0.0) inverse_rate *= rows / sampled;
  }
  model.population_estimate_ =
      static_cast<double>(denorm->num_rows()) * inverse_rate;

  BnTrainOptions bn_options;
  bn_options.max_bins = options.max_bins;
  bn_options.max_train_rows = 0;  // the denormalized sample is the dataset
  bn_options.seed = options.seed;
  BC_ASSIGN_OR_RETURN(model.bn_, BayesNetModel::Train(*denorm, bn_options));
  return model;
}

double BayesCardModel::EstimateCount(
    const minihouse::BoundQuery& query) const {
  // Re-address each filter onto the denormalized column space.
  minihouse::Conjunction filters;
  for (const minihouse::BoundTableRef& ref : query.tables) {
    const std::string alias =
        ref.alias.empty() ? ref.table->name() : ref.alias;
    for (const minihouse::ColumnPredicate& pred : ref.filters) {
      const std::string denorm_name =
          alias + "_" + ref.table->schema().column(pred.column).name;
      auto it = std::find(denorm_columns_.begin(), denorm_columns_.end(),
                          denorm_name);
      if (it == denorm_columns_.end()) continue;  // column not denormalized
      minihouse::ColumnPredicate mapped = pred;
      mapped.column = static_cast<int>(it - denorm_columns_.begin());
      mapped.column_name = denorm_name;
      filters.push_back(std::move(mapped));
    }
  }
  const BnInferenceContext context(&bn_);
  return context.EstimateSelectivity(filters) * population_estimate_;
}

void BayesCardModel::Serialize(BufferWriter* writer) const {
  writer->WriteU32(kBayesCardFormatVersion);
  writer->WriteDouble(population_estimate_);
  writer->WriteU64(denorm_columns_.size());
  for (const std::string& name : denorm_columns_) writer->WriteString(name);
  bn_.Serialize(writer);
}

Result<BayesCardModel> BayesCardModel::Deserialize(BufferReader* reader) {
  uint32_t version = 0;
  BC_RETURN_IF_ERROR(reader->ReadU32(&version));
  if (version != kBayesCardFormatVersion) {
    return Status::InvalidModel("unsupported BayesCard artifact version");
  }
  BayesCardModel model;
  BC_RETURN_IF_ERROR(reader->ReadDouble(&model.population_estimate_));
  uint64_t n = 0;
  BC_RETURN_IF_ERROR(reader->ReadU64(&n));
  model.denorm_columns_.resize(n);
  for (auto& name : model.denorm_columns_) {
    BC_RETURN_IF_ERROR(reader->ReadString(&name));
  }
  BC_ASSIGN_OR_RETURN(model.bn_, BayesNetModel::Deserialize(reader));
  return model;
}

}  // namespace bytecard::cardest
