#include "cardest/baselines/mscn.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.h"

namespace bytecard::cardest {

namespace {
constexpr uint32_t kMscnFormatVersion = 1;

size_t StableHash(const std::string& s) {
  // FNV-1a, stable across runs (std::hash is not guaranteed stable).
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

int OpIndex(minihouse::CompareOp op) { return static_cast<int>(op); }

}  // namespace

int MscnModel::feature_dim() const {
  return static_cast<int>(table_names_.size()) + kJoinHashDim +
         kColumnHashDim + kOpDim + 1;  // +1 normalized operand value
}

std::vector<double> MscnModel::Featurize(
    const minihouse::BoundQuery& query) const {
  std::vector<double> features(feature_dim(), 0.0);
  const int num_tables = static_cast<int>(table_names_.size());

  // Table set: multi-hot.
  for (const minihouse::BoundTableRef& ref : query.tables) {
    for (int i = 0; i < num_tables; ++i) {
      if (table_names_[i] == ref.table->name()) features[i] = 1.0;
    }
  }

  // Join set: hashed one-hots, mean-pooled.
  if (!query.joins.empty()) {
    const double w = 1.0 / static_cast<double>(query.joins.size());
    for (const minihouse::JoinEdge& e : query.joins) {
      std::string a = query.tables[e.left_table].table->name() + "." +
                      std::to_string(e.left_column);
      std::string b = query.tables[e.right_table].table->name() + "." +
                      std::to_string(e.right_column);
      if (b < a) std::swap(a, b);
      const size_t h = StableHash(a + "=" + b) % kJoinHashDim;
      features[num_tables + static_cast<int>(h)] += w;
    }
  }

  // Predicate set: (hashed column, op one-hot, normalized value),
  // mean-pooled.
  int num_predicates = 0;
  for (const minihouse::BoundTableRef& ref : query.tables) {
    num_predicates += static_cast<int>(ref.filters.size());
  }
  if (num_predicates > 0) {
    const double w = 1.0 / static_cast<double>(num_predicates);
    const int col_base = num_tables + kJoinHashDim;
    const int op_base = col_base + kColumnHashDim;
    const int value_pos = op_base + kOpDim;
    for (const minihouse::BoundTableRef& ref : query.tables) {
      for (const minihouse::ColumnPredicate& pred : ref.filters) {
        const std::string key =
            ref.table->name() + "." + std::to_string(pred.column);
        const size_t h = StableHash(key) % kColumnHashDim;
        features[col_base + static_cast<int>(h)] += w;
        features[op_base + OpIndex(pred.op)] += w;

        double value = static_cast<double>(pred.operand);
        if (pred.op == minihouse::CompareOp::kIn && !pred.in_list.empty()) {
          value = static_cast<double>(pred.in_list[0]);
        }
        auto it = column_ranges_.find(key);
        double normalized = 0.5;
        if (it != column_ranges_.end() &&
            it->second.second > it->second.first) {
          normalized = (value - it->second.first) /
                       (it->second.second - it->second.first);
          normalized = std::clamp(normalized, 0.0, 1.0);
        }
        features[value_pos] += w * normalized;
      }
    }
  }
  return features;
}

Result<MscnModel> MscnModel::Train(
    const minihouse::Database& db,
    const std::vector<minihouse::BoundQuery>& queries,
    const std::vector<double>& true_counts, const TrainOptions& options) {
  if (queries.size() != true_counts.size() || queries.empty()) {
    return Status::InvalidArgument("MSCN training needs labelled queries");
  }
  MscnModel model;
  model.table_names_ = db.TableNames();
  for (const std::string& name : model.table_names_) {
    const minihouse::Table* table = db.FindTable(name).value();
    for (int c = 0; c < table->num_columns(); ++c) {
      if (table->schema().column(c).type == minihouse::DataType::kArray) {
        continue;
      }
      const minihouse::Column& col = table->column(c);
      double lo = 0.0;
      double hi = 0.0;
      if (col.num_rows() > 0) {
        lo = hi = static_cast<double>(col.NumericAt(0));
        for (int64_t i = 1; i < col.num_rows(); ++i) {
          const double v = static_cast<double>(col.NumericAt(i));
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
      }
      model.column_ranges_[name + "." + std::to_string(c)] = {lo, hi};
    }
  }

  model.network_ =
      Mlp::Create({model.feature_dim(), 128, 64, 1}, options.seed);

  std::vector<std::vector<double>> inputs;
  std::vector<double> targets;
  inputs.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    inputs.push_back(model.Featurize(queries[i]));
    targets.push_back(std::log1p(std::max(0.0, true_counts[i])));
  }

  Mlp::TrainConfig config;
  config.learning_rate = options.learning_rate;
  config.epochs = options.epochs;
  config.seed = options.seed;
  model.network_.Train(inputs, targets, config);
  BC_RETURN_IF_ERROR(model.network_.ValidateWeights());
  return model;
}

double MscnModel::EstimateCount(const minihouse::BoundQuery& query) const {
  const double log_count = network_.Predict(Featurize(query));
  return std::max(0.0, std::expm1(std::max(0.0, log_count)));
}

void MscnModel::Serialize(BufferWriter* writer) const {
  writer->WriteU32(kMscnFormatVersion);
  writer->WriteU64(table_names_.size());
  for (const std::string& name : table_names_) writer->WriteString(name);
  writer->WriteU64(column_ranges_.size());
  for (const auto& [key, range] : column_ranges_) {
    writer->WriteString(key);
    writer->WriteDouble(range.first);
    writer->WriteDouble(range.second);
  }
  network_.Serialize(writer);
}

Result<MscnModel> MscnModel::Deserialize(BufferReader* reader) {
  uint32_t version = 0;
  BC_RETURN_IF_ERROR(reader->ReadU32(&version));
  if (version != kMscnFormatVersion) {
    return Status::InvalidModel("unsupported MSCN artifact version");
  }
  MscnModel model;
  uint64_t num_tables = 0;
  BC_RETURN_IF_ERROR(reader->ReadU64(&num_tables));
  model.table_names_.resize(num_tables);
  for (auto& name : model.table_names_) {
    BC_RETURN_IF_ERROR(reader->ReadString(&name));
  }
  uint64_t num_ranges = 0;
  BC_RETURN_IF_ERROR(reader->ReadU64(&num_ranges));
  for (uint64_t i = 0; i < num_ranges; ++i) {
    std::string key;
    double lo = 0.0;
    double hi = 0.0;
    BC_RETURN_IF_ERROR(reader->ReadString(&key));
    BC_RETURN_IF_ERROR(reader->ReadDouble(&lo));
    BC_RETURN_IF_ERROR(reader->ReadDouble(&hi));
    model.column_ranges_[key] = {lo, hi};
  }
  BC_ASSIGN_OR_RETURN(model.network_, Mlp::Deserialize(reader));
  return model;
}

}  // namespace bytecard::cardest
