#ifndef BYTECARD_CARDEST_BASELINES_BAYESCARD_H_
#define BYTECARD_CARDEST_BASELINES_BAYESCARD_H_

#include <memory>
#include <string>
#include <vector>

#include "cardest/bayes/bayes_net.h"
#include "common/serde.h"
#include "minihouse/query.h"

namespace bytecard::cardest {

// BayesCard-style baseline: one tree-structured Bayesian network trained over
// the *denormalized* join of a schema's tables. This is the design the paper
// contrasts ByteCard against in Table 3 — BN inference is identical to
// ByteCard's single-table model, but the denormalization step multiplies
// training data and model width, and each new join pattern demands new
// denormalized columns.
class BayesCardModel {
 public:
  struct TrainOptions {
    int64_t max_base_rows = 20000;    // per-table sample before joining
    int64_t max_output_rows = 120000; // denormalized training rows cap
    int max_bins = 64;
    uint64_t seed = 17;
  };

  BayesCardModel() = default;

  // `full_join` describes the schema's canonical join of all tables (no
  // filters); the BN is trained over its sampled denormalization.
  static Result<BayesCardModel> Train(const minihouse::BoundQuery& full_join,
                                      const TrainOptions& options);

  // COUNT(*) estimate: P(filters) on the denormalized distribution times the
  // estimated full-join population. Filters are re-addressed onto the
  // denormalized column space ("alias_column").
  double EstimateCount(const minihouse::BoundQuery& query) const;

  const BayesNetModel& network() const { return bn_; }
  double population_estimate() const { return population_estimate_; }

  void Serialize(BufferWriter* writer) const;
  static Result<BayesCardModel> Deserialize(BufferReader* reader);

 private:
  BayesNetModel bn_;
  // Column names of the denormalized table, aligned with schema indices.
  std::vector<std::string> denorm_columns_;
  double population_estimate_ = 0.0;
};

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_BASELINES_BAYESCARD_H_
