#include "cardest/baselines/denorm.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "cardest/factorjoin/factor_graph.h"
#include "common/logging.h"
#include "common/rng.h"
#include <unordered_map>

#include "minihouse/join.h"

namespace bytecard::cardest {

namespace {

using minihouse::BoundQuery;
using minihouse::Relation;

// Materializes a sampled base table as a Relation with "alias_col" names,
// restricted to columns that participate in the join or are model-visible.
Relation SampleToRelation(const BoundQuery& query, int table_idx,
                          int64_t max_rows, Rng* rng) {
  const minihouse::BoundTableRef& ref = query.tables[table_idx];
  const minihouse::Table& table = *ref.table;
  const std::string alias =
      ref.alias.empty() ? table.name() : ref.alias;

  std::vector<int64_t> rows(table.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  if (table.num_rows() > max_rows) {
    for (int64_t i = 0; i < max_rows; ++i) {
      const int64_t j =
          i + static_cast<int64_t>(rng->Uniform(table.num_rows() - i));
      std::swap(rows[i], rows[j]);
    }
    rows.resize(max_rows);
  }

  Relation rel;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (table.schema().column(c).type == minihouse::DataType::kArray) {
      continue;
    }
    rel.column_names.push_back(alias + "_" +
                               table.schema().column(c).name);
    std::vector<int64_t> values;
    values.reserve(rows.size());
    const minihouse::Column& col = table.column(c);
    for (int64_t r : rows) values.push_back(col.NumericAt(r));
    rel.columns.push_back(std::move(values));
  }
  return rel;
}

void TruncateRelation(Relation* rel, int64_t max_rows) {
  if (rel->num_rows() <= max_rows) return;
  for (auto& col : rel->columns) col.resize(max_rows);
}

// Left-outer hash join: DeepDB/BayesCard denormalize with OUTER joins so
// rows without a match in a satellite table survive (with sentinel values),
// keeping the training distribution faithful to the base tables instead of
// restricting it to rows present in every satellite.
Relation LeftOuterJoin(const Relation& left, const Relation& right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys,
                       int64_t null_sentinel) {
  std::unordered_multimap<int64_t, int64_t> ht;
  auto key_of = [](const Relation& rel, const std::vector<int>& keys,
                   int64_t row) {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (int k : keys) {
      uint64_t x = static_cast<uint64_t>(rel.columns[k][row]);
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      h ^= (x ^ (x >> 27)) + (h << 6) + (h >> 2);
    }
    return static_cast<int64_t>(h);
  };
  ht.reserve(static_cast<size_t>(right.num_rows()));
  for (int64_t r = 0; r < right.num_rows(); ++r) {
    ht.emplace(key_of(right, right_keys, r), r);
  }

  Relation out;
  out.column_names = left.column_names;
  out.column_names.insert(out.column_names.end(), right.column_names.begin(),
                          right.column_names.end());
  out.columns.resize(out.column_names.size());

  auto emit = [&](int64_t lrow, int64_t rrow) {
    for (size_t c = 0; c < left.columns.size(); ++c) {
      out.columns[c].push_back(left.columns[c][lrow]);
    }
    for (size_t c = 0; c < right.columns.size(); ++c) {
      out.columns[left.columns.size() + c].push_back(
          rrow < 0 ? null_sentinel : right.columns[c][rrow]);
    }
  };

  for (int64_t l = 0; l < left.num_rows(); ++l) {
    auto [lo, hi] = ht.equal_range(key_of(left, left_keys, l));
    bool matched = false;
    for (auto it = lo; it != hi; ++it) {
      bool equal = true;
      for (size_t k = 0; k < left_keys.size(); ++k) {
        if (left.columns[left_keys[k]][l] !=
            right.columns[right_keys[k]][it->second]) {
          equal = false;
          break;
        }
      }
      if (equal) {
        emit(l, it->second);
        matched = true;
      }
    }
    if (!matched) emit(l, -1);
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<minihouse::Table>> BuildDenormalizedSample(
    const BoundQuery& full_join, int64_t max_base_rows,
    int64_t max_output_rows, uint64_t seed) {
  if (full_join.tables.empty()) {
    return Status::InvalidArgument("denormalization needs tables");
  }
  Rng rng(seed);

  std::vector<int> subset(full_join.num_tables());
  std::iota(subset.begin(), subset.end(), 0);
  const std::vector<int> order = JoinSpanningOrder(full_join, subset);

  auto qualified = [&](int t, int c) {
    const auto& ref = full_join.tables[t];
    const std::string alias =
        ref.alias.empty() ? ref.table->name() : ref.alias;
    return alias + "_" + ref.table->schema().column(c).name;
  };

  Relation current =
      SampleToRelation(full_join, order[0], max_base_rows, &rng);
  std::set<int> joined = {order[0]};

  for (size_t step = 1; step < order.size(); ++step) {
    const int t = order[step];
    Relation right = SampleToRelation(full_join, t, max_base_rows, &rng);

    std::vector<int> left_keys;
    std::vector<int> right_keys;
    for (const minihouse::JoinEdge& e : full_join.joins) {
      int this_col = -1;
      int other_t = -1;
      int other_col = -1;
      if (e.left_table == t && joined.count(e.right_table)) {
        this_col = e.left_column;
        other_t = e.right_table;
        other_col = e.right_column;
      } else if (e.right_table == t && joined.count(e.left_table)) {
        this_col = e.right_column;
        other_t = e.left_table;
        other_col = e.left_column;
      } else {
        continue;
      }
      const int lk = current.FindColumn(qualified(other_t, other_col));
      const int rk = right.FindColumn(qualified(t, this_col));
      if (lk >= 0 && rk >= 0) {
        left_keys.push_back(lk);
        right_keys.push_back(rk);
      }
    }
    if (left_keys.empty()) {
      return Status::InvalidArgument(
          "denormalization join graph is disconnected");
    }
    current = LeftOuterJoin(current, right, left_keys, right_keys,
                            /*null_sentinel=*/-1);
    TruncateRelation(&current, max_output_rows);
    joined.insert(t);
  }

  // Wrap the relation as an in-memory table.
  minihouse::TableSchema schema;
  for (const std::string& name : current.column_names) {
    schema.AddColumn(
        minihouse::ColumnDef{name, minihouse::DataType::kInt64});
  }
  auto table = std::make_unique<minihouse::Table>("denormalized", schema);
  for (size_t c = 0; c < current.columns.size(); ++c) {
    for (int64_t v : current.columns[c]) {
      table->mutable_column(static_cast<int>(c))->AppendInt(v);
    }
  }
  BC_RETURN_IF_ERROR(table->Seal());
  return table;
}

}  // namespace bytecard::cardest
