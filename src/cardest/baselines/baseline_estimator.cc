#include "cardest/baselines/baseline_estimator.h"

#include <algorithm>
#include <cstdint>

#include "common/logging.h"

namespace bytecard::cardest {

namespace {

// Inclusion-exclusion over an estimator's own selectivity answer; mirrors
// the snapshot's native disjunction path so the baselines answer OR queries
// through the same canonical request shape.
double DisjunctionCount(minihouse::CardinalityEstimator* est,
                        const minihouse::Table& table,
                        const std::vector<minihouse::Conjunction>& disjuncts,
                        InferenceSession* session) {
  const int n = static_cast<int>(disjuncts.size());
  if (n == 0) return 0.0;
  BC_CHECK(n <= 16) << "inclusion-exclusion over too many disjuncts";
  double selectivity = 0.0;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    minihouse::Conjunction merged;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        merged.insert(merged.end(), disjuncts[i].begin(), disjuncts[i].end());
      }
    }
    const double term = est->Estimate(
        CardEstRequest::Selectivity(table, merged), session);
    selectivity += (__builtin_popcount(mask) % 2 == 1) ? term : -term;
  }
  selectivity = std::clamp(selectivity, 0.0, 1.0);
  return selectivity * static_cast<double>(table.num_rows());
}

// A single-table query over `table` with `filters`, for models whose only
// native entry point is a whole-query COUNT.
minihouse::BoundQuery SingleTableQuery(const minihouse::Table& table,
                                       const minihouse::Conjunction& filters) {
  minihouse::BoundQuery query;
  minihouse::BoundTableRef ref;
  ref.table = &table;
  ref.alias = table.name();
  ref.filters = filters;
  query.tables.push_back(std::move(ref));
  return query;
}

}  // namespace

minihouse::BoundQuery SubQueryOf(const minihouse::BoundQuery& query,
                                 const std::vector<int>& subset) {
  minihouse::BoundQuery sub;
  std::vector<int> remap(query.tables.size(), -1);
  for (int t : subset) {
    remap[t] = static_cast<int>(sub.tables.size());
    sub.tables.push_back(query.tables[t]);
  }
  for (const minihouse::JoinEdge& e : query.joins) {
    if (remap[e.left_table] < 0 || remap[e.right_table] < 0) continue;
    minihouse::JoinEdge mapped = e;
    mapped.left_table = remap[e.left_table];
    mapped.right_table = remap[e.right_table];
    sub.joins.push_back(mapped);
  }
  return sub;
}

// ---------------------------------------------------------------------------
// MscnEstimator
// ---------------------------------------------------------------------------

double MscnEstimator::Estimate(const CardEstRequest& request,
                               InferenceSession* session) {
  switch (request.target) {
    case CardEstTarget::kSelectivity: {
      const double rows = static_cast<double>(request.table->num_rows());
      if (rows <= 0.0) return 0.0;
      const double count = model_->EstimateCount(
          SingleTableQuery(*request.table, *request.filters));
      return std::clamp(count / rows, 0.0, 1.0);
    }
    case CardEstTarget::kJoinCount: {
      std::vector<int> scratch;
      return model_->EstimateCount(
          SubQueryOf(*request.query, request.ResolveTables(session, &scratch)));
    }
    case CardEstTarget::kDisjunction:
      return DisjunctionCount(this, *request.table, *request.disjuncts,
                              session);
    case CardEstTarget::kGroupNdv:
    case CardEstTarget::kColumnNdv:
      return 1.0;  // COUNT-only model family
  }
  return 1.0;
}

double MscnEstimator::EstimateSelectivity(
    const minihouse::Table& table, const minihouse::Conjunction& filters) {
  return Estimate(CardEstRequest::Selectivity(table, filters), nullptr);
}

double MscnEstimator::EstimateJoinCardinality(
    const minihouse::BoundQuery& query, const std::vector<int>& table_subset) {
  return Estimate(CardEstRequest::JoinCount(query, table_subset), nullptr);
}

double MscnEstimator::EstimateGroupNdv(const minihouse::BoundQuery& query) {
  return Estimate(CardEstRequest::GroupNdv(query), nullptr);
}

// ---------------------------------------------------------------------------
// SpnEstimator
// ---------------------------------------------------------------------------

namespace {

// Re-address the filters of `query`'s tables onto the denormalized column
// space ("alias_column", same convention as BuildDenormalizedSample).
// Predicates on columns absent from the denorm schema are dropped.
minihouse::Conjunction DenormFilters(const minihouse::BoundQuery& query,
                                     const minihouse::Table& denorm) {
  minihouse::Conjunction filters;
  for (const minihouse::BoundTableRef& ref : query.tables) {
    const std::string alias =
        ref.alias.empty() ? ref.table->name() : ref.alias;
    for (const minihouse::ColumnPredicate& pred : ref.filters) {
      const std::string denorm_name =
          alias + "_" + ref.table->schema().column(pred.column).name;
      const int column = denorm.FindColumnIndex(denorm_name);
      if (column < 0) continue;
      minihouse::ColumnPredicate mapped = pred;
      mapped.column = column;
      mapped.column_name = denorm_name;
      filters.push_back(std::move(mapped));
    }
  }
  return filters;
}

}  // namespace

double SpnEstimator::Estimate(const CardEstRequest& request,
                              InferenceSession* session) {
  switch (request.target) {
    case CardEstTarget::kSelectivity:
      // P over the denormalized distribution stands in for the base-table
      // selectivity — the approximation the DeepDB design makes.
      return std::clamp(
          model_->EstimateSelectivity(DenormFilters(
              SingleTableQuery(*request.table, *request.filters), *denorm_)),
          0.0, 1.0);
    case CardEstTarget::kJoinCount: {
      std::vector<int> scratch;
      const minihouse::BoundQuery sub =
          SubQueryOf(*request.query, request.ResolveTables(session, &scratch));
      // Subset population: the full-join population is the only size the
      // denormalized model knows; single-table subsets use the table itself.
      double population = population_estimate_;
      if (sub.tables.size() == 1) {
        population = static_cast<double>(sub.tables[0].table->num_rows());
      }
      return model_->EstimateSelectivity(DenormFilters(sub, *denorm_)) *
             population;
    }
    case CardEstTarget::kDisjunction:
      return DisjunctionCount(this, *request.table, *request.disjuncts,
                              session);
    case CardEstTarget::kGroupNdv:
    case CardEstTarget::kColumnNdv:
      return 1.0;  // COUNT-only model family
  }
  return 1.0;
}

double SpnEstimator::EstimateSelectivity(
    const minihouse::Table& table, const minihouse::Conjunction& filters) {
  return Estimate(CardEstRequest::Selectivity(table, filters), nullptr);
}

double SpnEstimator::EstimateJoinCardinality(
    const minihouse::BoundQuery& query, const std::vector<int>& table_subset) {
  return Estimate(CardEstRequest::JoinCount(query, table_subset), nullptr);
}

double SpnEstimator::EstimateGroupNdv(const minihouse::BoundQuery& query) {
  return Estimate(CardEstRequest::GroupNdv(query), nullptr);
}

// ---------------------------------------------------------------------------
// BayesCardEstimator
// ---------------------------------------------------------------------------

double BayesCardEstimator::Estimate(const CardEstRequest& request,
                                    InferenceSession* session) {
  switch (request.target) {
    case CardEstTarget::kSelectivity: {
      const double population = model_->population_estimate();
      if (population <= 0.0) return 1.0;
      const double count = model_->EstimateCount(
          SingleTableQuery(*request.table, *request.filters));
      return std::clamp(count / population, 0.0, 1.0);
    }
    case CardEstTarget::kJoinCount: {
      std::vector<int> scratch;
      return model_->EstimateCount(
          SubQueryOf(*request.query, request.ResolveTables(session, &scratch)));
    }
    case CardEstTarget::kDisjunction:
      return DisjunctionCount(this, *request.table, *request.disjuncts,
                              session);
    case CardEstTarget::kGroupNdv:
    case CardEstTarget::kColumnNdv:
      return 1.0;  // COUNT-only model family
  }
  return 1.0;
}

double BayesCardEstimator::EstimateSelectivity(
    const minihouse::Table& table, const minihouse::Conjunction& filters) {
  return Estimate(CardEstRequest::Selectivity(table, filters), nullptr);
}

double BayesCardEstimator::EstimateJoinCardinality(
    const minihouse::BoundQuery& query, const std::vector<int>& table_subset) {
  return Estimate(CardEstRequest::JoinCount(query, table_subset), nullptr);
}

double BayesCardEstimator::EstimateGroupNdv(
    const minihouse::BoundQuery& query) {
  return Estimate(CardEstRequest::GroupNdv(query), nullptr);
}

}  // namespace bytecard::cardest
