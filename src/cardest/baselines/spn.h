#ifndef BYTECARD_CARDEST_BASELINES_SPN_H_
#define BYTECARD_CARDEST_BASELINES_SPN_H_

#include <cstdint>
#include <vector>

#include "cardest/discretizer.h"
#include "common/serde.h"
#include "minihouse/predicate.h"
#include "minihouse/table.h"

namespace bytecard::cardest {

// DeepDB-style Sum-Product Network over one (optionally denormalized) table.
// Structure learning follows the LearnSPN recipe: partition columns into
// independent groups (product nodes, mutual-information test), cluster rows
// (sum nodes, 2-means), and close recursion with per-column histogram
// leaves. Inference evaluates P(conjunctive predicate) bottom-up.
//
// Used as the DeepDB comparator in Table 3: training over the denormalized
// join sample is what makes it slow and large relative to ByteCard.
class SpnModel {
 public:
  struct TrainOptions {
    int max_bins = 64;
    int64_t min_instances = 512;   // stop row-clustering below this
    double mi_threshold = 0.01;    // independence cut for product nodes
    int max_depth = 16;
    uint64_t seed = 5;
  };

  SpnModel() = default;

  static Result<SpnModel> Train(const minihouse::Table& table,
                                const TrainOptions& options);

  // P(filters) over the trained table's rows.
  double EstimateSelectivity(const minihouse::Conjunction& filters) const;
  double EstimateCount(const minihouse::Conjunction& filters) const;

  int64_t row_count() const { return row_count_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  void Serialize(BufferWriter* writer) const;
  static Result<SpnModel> Deserialize(BufferReader* reader);

 private:
  enum class NodeKind : uint32_t { kSum = 0, kProduct = 1, kLeaf = 2 };

  struct Node {
    NodeKind kind = NodeKind::kLeaf;
    std::vector<int> children;
    std::vector<double> weights;       // sum nodes: child mixture weights
    int column = -1;                   // leaf: variable index
    std::vector<double> distribution;  // leaf: bin probabilities
  };

  double Evaluate(int node,
                  const std::vector<std::vector<double>>& evidence) const;

  std::vector<Node> nodes_;
  int root_ = -1;
  std::vector<int> columns_;              // schema column per variable
  std::vector<Discretizer> discretizers_;  // per variable
  int64_t row_count_ = 0;
};

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_BASELINES_SPN_H_
