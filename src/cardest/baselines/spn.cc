#include "cardest/baselines/spn.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "cardest/bayes/chow_liu.h"
#include "common/logging.h"
#include "common/rng.h"

namespace bytecard::cardest {

namespace {
constexpr uint32_t kSpnFormatVersion = 1;
}  // namespace

Result<SpnModel> SpnModel::Train(const minihouse::Table& table,
                                 const TrainOptions& options) {
  SpnModel model;
  model.row_count_ = table.num_rows();

  // Variables: all supported columns.
  for (int c = 0; c < table.num_columns(); ++c) {
    if (table.schema().column(c).type != minihouse::DataType::kArray) {
      model.columns_.push_back(c);
    }
  }
  if (model.columns_.empty()) {
    return Status::InvalidArgument("SPN has no trainable columns");
  }
  const int num_vars = static_cast<int>(model.columns_.size());

  // Discretize everything once.
  std::vector<std::vector<int>> data(num_vars);
  model.discretizers_.resize(num_vars);
  for (int v = 0; v < num_vars; ++v) {
    const minihouse::Column& col = table.column(model.columns_[v]);
    model.discretizers_[v] =
        Discretizer::BuildFromColumn(col, options.max_bins);
    data[v].reserve(col.num_rows());
    for (int64_t i = 0; i < col.num_rows(); ++i) {
      data[v].push_back(model.discretizers_[v].BinOf(col.NumericAt(i)));
    }
  }

  Rng rng(options.seed);

  // Recursive structure learning over (row subset, variable subset).
  std::function<int(const std::vector<int64_t>&, const std::vector<int>&,
                    int)>
      build = [&](const std::vector<int64_t>& rows,
                  const std::vector<int>& vars, int depth) -> int {
    auto make_leaf = [&](int var) {
      Node leaf;
      leaf.kind = NodeKind::kLeaf;
      leaf.column = var;
      const int nb = model.discretizers_[var].num_bins();
      leaf.distribution.assign(nb, 0.0);
      for (int64_t r : rows) leaf.distribution[data[var][r]] += 1.0;
      const double denom = static_cast<double>(rows.size()) + 1e-3 * nb;
      for (double& p : leaf.distribution) p = (p + 1e-3) / denom;
      model.nodes_.push_back(std::move(leaf));
      return static_cast<int>(model.nodes_.size()) - 1;
    };

    auto product_of_leaves = [&]() {
      if (vars.size() == 1) return make_leaf(vars[0]);
      Node product;
      product.kind = NodeKind::kProduct;
      for (int var : vars) product.children.push_back(make_leaf(var));
      model.nodes_.push_back(std::move(product));
      return static_cast<int>(model.nodes_.size()) - 1;
    };

    if (vars.size() == 1) return make_leaf(vars[0]);
    if (static_cast<int64_t>(rows.size()) < options.min_instances ||
        depth >= options.max_depth) {
      return product_of_leaves();
    }

    // Try a product split: connected components of the MI graph over `vars`
    // restricted to `rows`.
    {
      const int k = static_cast<int>(vars.size());
      std::vector<std::vector<int>> local(k);
      for (int i = 0; i < k; ++i) {
        local[i].reserve(rows.size());
        for (int64_t r : rows) local[i].push_back(data[vars[i]][r]);
      }
      std::vector<int> component(k, -1);
      int num_components = 0;
      for (int i = 0; i < k; ++i) {
        if (component[i] >= 0) continue;
        // BFS over MI edges.
        std::vector<int> queue = {i};
        component[i] = num_components;
        for (size_t qi = 0; qi < queue.size(); ++qi) {
          const int a = queue[qi];
          for (int b = 0; b < k; ++b) {
            if (component[b] >= 0) continue;
            const double mi = MutualInformation(
                local[a], local[b], model.discretizers_[vars[a]].num_bins(),
                model.discretizers_[vars[b]].num_bins());
            if (mi > options.mi_threshold) {
              component[b] = num_components;
              queue.push_back(b);
            }
          }
        }
        ++num_components;
      }
      if (num_components > 1) {
        Node product;
        product.kind = NodeKind::kProduct;
        for (int comp = 0; comp < num_components; ++comp) {
          std::vector<int> sub_vars;
          for (int i = 0; i < k; ++i) {
            if (component[i] == comp) sub_vars.push_back(vars[i]);
          }
          product.children.push_back(build(rows, sub_vars, depth + 1));
        }
        model.nodes_.push_back(std::move(product));
        return static_cast<int>(model.nodes_.size()) - 1;
      }
    }

    // Otherwise, a sum split: 2-means over normalized bin coordinates.
    {
      const int k = static_cast<int>(vars.size());
      auto coord = [&](int64_t row, int vi) {
        const int nb = model.discretizers_[vars[vi]].num_bins();
        return nb <= 1 ? 0.0
                       : static_cast<double>(data[vars[vi]][row]) /
                             static_cast<double>(nb - 1);
      };
      // Initialize centroids from two random rows.
      std::vector<double> c0(k);
      std::vector<double> c1(k);
      const int64_t r0 = rows[rng.Uniform(rows.size())];
      const int64_t r1 = rows[rng.Uniform(rows.size())];
      for (int i = 0; i < k; ++i) {
        c0[i] = coord(r0, i);
        c1[i] = coord(r1, i);
      }
      std::vector<uint8_t> assign(rows.size(), 0);
      for (int iter = 0; iter < 5; ++iter) {
        for (size_t ri = 0; ri < rows.size(); ++ri) {
          double d0 = 0.0;
          double d1 = 0.0;
          for (int i = 0; i < k; ++i) {
            const double x = coord(rows[ri], i);
            d0 += (x - c0[i]) * (x - c0[i]);
            d1 += (x - c1[i]) * (x - c1[i]);
          }
          assign[ri] = d1 < d0 ? 1 : 0;
        }
        std::vector<double> s0(k, 0.0);
        std::vector<double> s1(k, 0.0);
        int64_t n0 = 0;
        int64_t n1 = 0;
        for (size_t ri = 0; ri < rows.size(); ++ri) {
          for (int i = 0; i < k; ++i) {
            (assign[ri] ? s1 : s0)[i] += coord(rows[ri], i);
          }
          (assign[ri] ? n1 : n0) += 1;
        }
        if (n0 == 0 || n1 == 0) break;
        for (int i = 0; i < k; ++i) {
          c0[i] = s0[i] / static_cast<double>(n0);
          c1[i] = s1[i] / static_cast<double>(n1);
        }
      }
      std::vector<int64_t> rows0;
      std::vector<int64_t> rows1;
      for (size_t ri = 0; ri < rows.size(); ++ri) {
        (assign[ri] ? rows1 : rows0).push_back(rows[ri]);
      }
      if (rows0.empty() || rows1.empty()) {
        // Degenerate clustering (identical coordinates or unlucky seeds):
        // split in half so structure learning keeps making progress, as
        // LearnSPN implementations do.
        rows0.assign(rows.begin(), rows.begin() + rows.size() / 2);
        rows1.assign(rows.begin() + rows.size() / 2, rows.end());
        if (rows0.empty() || rows1.empty()) return product_of_leaves();
      }
      Node sum;
      sum.kind = NodeKind::kSum;
      sum.weights = {
          static_cast<double>(rows0.size()) / static_cast<double>(rows.size()),
          static_cast<double>(rows1.size()) /
              static_cast<double>(rows.size())};
      const int child0 = build(rows0, vars, depth + 1);
      const int child1 = build(rows1, vars, depth + 1);
      sum.children = {child0, child1};
      model.nodes_.push_back(std::move(sum));
      return static_cast<int>(model.nodes_.size()) - 1;
    }
  };

  std::vector<int64_t> all_rows(table.num_rows());
  std::iota(all_rows.begin(), all_rows.end(), 0);
  std::vector<int> all_vars(num_vars);
  std::iota(all_vars.begin(), all_vars.end(), 0);
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("SPN training needs rows");
  }
  model.root_ = build(all_rows, all_vars, 0);
  return model;
}

double SpnModel::Evaluate(
    int node, const std::vector<std::vector<double>>& evidence) const {
  const Node& n = nodes_[node];
  switch (n.kind) {
    case NodeKind::kLeaf: {
      const std::vector<double>& w = evidence[n.column];
      if (w.empty()) return 1.0;  // unconstrained variable integrates to 1
      double p = 0.0;
      for (size_t b = 0; b < n.distribution.size(); ++b) {
        p += n.distribution[b] * w[b];
      }
      return p;
    }
    case NodeKind::kProduct: {
      double p = 1.0;
      for (int c : n.children) p *= Evaluate(c, evidence);
      return p;
    }
    case NodeKind::kSum: {
      double p = 0.0;
      for (size_t i = 0; i < n.children.size(); ++i) {
        p += n.weights[i] * Evaluate(n.children[i], evidence);
      }
      return p;
    }
  }
  return 0.0;
}

double SpnModel::EstimateSelectivity(
    const minihouse::Conjunction& filters) const {
  if (root_ < 0) return 1.0;
  std::vector<std::vector<double>> evidence(columns_.size());
  for (const minihouse::ColumnPredicate& pred : filters) {
    for (size_t v = 0; v < columns_.size(); ++v) {
      if (columns_[v] != pred.column) continue;
      std::vector<double> w = discretizers_[v].PredicateWeights(pred);
      if (evidence[v].empty()) {
        evidence[v] = std::move(w);
      } else {
        for (size_t b = 0; b < w.size(); ++b) evidence[v][b] *= w[b];
      }
    }
  }
  return std::clamp(Evaluate(root_, evidence), 0.0, 1.0);
}

double SpnModel::EstimateCount(const minihouse::Conjunction& filters) const {
  return EstimateSelectivity(filters) * static_cast<double>(row_count_);
}

void SpnModel::Serialize(BufferWriter* writer) const {
  writer->WriteU32(kSpnFormatVersion);
  writer->WriteI64(row_count_);
  writer->WriteI64(root_);
  writer->WriteU64(columns_.size());
  for (size_t v = 0; v < columns_.size(); ++v) {
    writer->WriteI64(columns_[v]);
    discretizers_[v].Serialize(writer);
  }
  writer->WriteU64(nodes_.size());
  for (const Node& n : nodes_) {
    writer->WriteU32(static_cast<uint32_t>(n.kind));
    writer->WriteI64(n.column);
    std::vector<int64_t> children(n.children.begin(), n.children.end());
    writer->WriteI64Vec(children);
    writer->WriteDoubleVec(n.weights);
    writer->WriteDoubleVec(n.distribution);
  }
}

Result<SpnModel> SpnModel::Deserialize(BufferReader* reader) {
  uint32_t version = 0;
  BC_RETURN_IF_ERROR(reader->ReadU32(&version));
  if (version != kSpnFormatVersion) {
    return Status::InvalidModel("unsupported SPN artifact version");
  }
  SpnModel model;
  int64_t root = 0;
  BC_RETURN_IF_ERROR(reader->ReadI64(&model.row_count_));
  BC_RETURN_IF_ERROR(reader->ReadI64(&root));
  model.root_ = static_cast<int>(root);
  uint64_t num_vars = 0;
  BC_RETURN_IF_ERROR(reader->ReadU64(&num_vars));
  model.columns_.resize(num_vars);
  model.discretizers_.resize(num_vars);
  for (uint64_t v = 0; v < num_vars; ++v) {
    int64_t column = 0;
    BC_RETURN_IF_ERROR(reader->ReadI64(&column));
    model.columns_[v] = static_cast<int>(column);
    BC_ASSIGN_OR_RETURN(model.discretizers_[v],
                        Discretizer::Deserialize(reader));
  }
  uint64_t num_nodes = 0;
  BC_RETURN_IF_ERROR(reader->ReadU64(&num_nodes));
  model.nodes_.resize(num_nodes);
  for (auto& n : model.nodes_) {
    uint32_t kind = 0;
    int64_t column = 0;
    BC_RETURN_IF_ERROR(reader->ReadU32(&kind));
    BC_RETURN_IF_ERROR(reader->ReadI64(&column));
    if (kind > 2) return Status::InvalidModel("bad SPN node kind");
    n.kind = static_cast<NodeKind>(kind);
    n.column = static_cast<int>(column);
    std::vector<int64_t> children;
    BC_RETURN_IF_ERROR(reader->ReadI64Vec(&children));
    n.children.assign(children.begin(), children.end());
    BC_RETURN_IF_ERROR(reader->ReadDoubleVec(&n.weights));
    BC_RETURN_IF_ERROR(reader->ReadDoubleVec(&n.distribution));
  }
  return model;
}

}  // namespace bytecard::cardest
