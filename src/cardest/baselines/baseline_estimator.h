#ifndef BYTECARD_CARDEST_BASELINES_BASELINE_ESTIMATOR_H_
#define BYTECARD_CARDEST_BASELINES_BASELINE_ESTIMATOR_H_

#include <string>
#include <vector>

#include "cardest/baselines/bayescard.h"
#include "cardest/baselines/mscn.h"
#include "cardest/baselines/spn.h"
#include "cardest/request.h"
#include "minihouse/optimizer.h"

namespace bytecard::cardest {

// CardinalityEstimator adapters over the Table 3 comparator models, so
// benchmark harnesses drive MSCN / SPN (DeepDB-style) / BayesCard through
// the same canonical CardEstRequest entry point as ByteCard itself. Each
// adapter's primary implementation is Estimate(request, session); the typed
// virtuals delegate through it. The adapters borrow their model (and, for
// SPN, the denormalized table): referents must outlive the adapter.
//
// Requests these model families cannot answer (column NDV, group NDV) get
// the neutral 1.0 — the comparators in the paper are COUNT estimators only.

// Query-driven baseline: every target reduces to a (sub-)query COUNT.
class MscnEstimator : public minihouse::CardinalityEstimator {
 public:
  explicit MscnEstimator(const MscnModel* model) : model_(model) {}

  std::string Name() const override { return "mscn"; }
  double Estimate(const CardEstRequest& request,
                  InferenceSession* session) override;
  double EstimateSelectivity(const minihouse::Table& table,
                             const minihouse::Conjunction& filters) override;
  double EstimateJoinCardinality(
      const minihouse::BoundQuery& query,
      const std::vector<int>& table_subset) override;
  double EstimateGroupNdv(const minihouse::BoundQuery& query) override;

 private:
  const MscnModel* model_;
};

// DeepDB-style baseline: the SPN is trained over `denorm` (the sampled
// denormalized join); predicates are re-addressed onto its column space and
// join counts scale P(filters) by the full-join population estimate.
class SpnEstimator : public minihouse::CardinalityEstimator {
 public:
  SpnEstimator(const SpnModel* model, const minihouse::Table* denorm,
               double population_estimate)
      : model_(model), denorm_(denorm),
        population_estimate_(population_estimate) {}

  std::string Name() const override { return "spn"; }
  double Estimate(const CardEstRequest& request,
                  InferenceSession* session) override;
  double EstimateSelectivity(const minihouse::Table& table,
                             const minihouse::Conjunction& filters) override;
  double EstimateJoinCardinality(
      const minihouse::BoundQuery& query,
      const std::vector<int>& table_subset) override;
  double EstimateGroupNdv(const minihouse::BoundQuery& query) override;

 private:
  const SpnModel* model_;
  const minihouse::Table* denorm_;
  double population_estimate_ = 0.0;
};

// BayesCard baseline: one BN over the denormalized join; selectivities are
// COUNT(sub-query) / population.
class BayesCardEstimator : public minihouse::CardinalityEstimator {
 public:
  explicit BayesCardEstimator(const BayesCardModel* model) : model_(model) {}

  std::string Name() const override { return "bayescard"; }
  double Estimate(const CardEstRequest& request,
                  InferenceSession* session) override;
  double EstimateSelectivity(const minihouse::Table& table,
                             const minihouse::Conjunction& filters) override;
  double EstimateJoinCardinality(
      const minihouse::BoundQuery& query,
      const std::vector<int>& table_subset) override;
  double EstimateGroupNdv(const minihouse::BoundQuery& query) override;

 private:
  const BayesCardModel* model_;
};

// Shared helper: the sub-query induced by `subset` (tables remapped to
// [0, |subset|), join edges restricted to the subset and re-indexed).
minihouse::BoundQuery SubQueryOf(const minihouse::BoundQuery& query,
                                 const std::vector<int>& subset);

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_BASELINES_BASELINE_ESTIMATOR_H_
