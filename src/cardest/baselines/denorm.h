#ifndef BYTECARD_CARDEST_BASELINES_DENORM_H_
#define BYTECARD_CARDEST_BASELINES_DENORM_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "minihouse/database.h"
#include "minihouse/query.h"

namespace bytecard::cardest {

// Materializes a (sampled) denormalized join of the tables in `full_join` —
// the training substrate DeepDB and BayesCard require for join-size
// estimation. Every base table is down-sampled to `max_base_rows` before
// joining and the join output is truncated at `max_output_rows`; column
// names in the result are "alias_column".
//
// This is exactly the design decision Table 3 criticizes: denormalizing
// multiplies the training data and adds join-fanout columns, which is why
// these baselines train slower and serialize bigger than ByteCard's
// per-table models.
Result<std::unique_ptr<minihouse::Table>> BuildDenormalizedSample(
    const minihouse::BoundQuery& full_join, int64_t max_base_rows,
    int64_t max_output_rows, uint64_t seed);

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_BASELINES_DENORM_H_
