#ifndef BYTECARD_CARDEST_BASELINES_MSCN_H_
#define BYTECARD_CARDEST_BASELINES_MSCN_H_

#include <map>
#include <string>
#include <vector>

#include "cardest/ndv/mlp.h"
#include "common/serde.h"
#include "minihouse/database.h"
#include "minihouse/query.h"

namespace bytecard::cardest {

// Query-driven COUNT baseline in the spirit of MSCN (Kipf et al.): set-based
// featurization of (tables, joins, predicates) with mean pooling, regressed
// to log cardinality over a training workload with known true counts.
//
// This is the model class the paper evaluates in Table 3 and rejects for
// production: it needs a labelled query workload (true cardinalities must be
// executed — that label cost is excluded from training time, as in the
// paper) and its knowledge decays whenever data changes.
class MscnModel {
 public:
  struct TrainOptions {
    int epochs = 120;
    double learning_rate = 1e-3;
    uint64_t seed = 11;
  };

  MscnModel() = default;

  // `queries[i]` must have true cardinality `true_counts[i]`. The featurizer
  // universe (table list, per-column value ranges) is frozen from `db`.
  static Result<MscnModel> Train(const minihouse::Database& db,
                                 const std::vector<minihouse::BoundQuery>& queries,
                                 const std::vector<double>& true_counts,
                                 const TrainOptions& options);

  double EstimateCount(const minihouse::BoundQuery& query) const;

  // Featurization exposed for tests: fixed-width vector independent of the
  // number of joins/predicates in the query (sets are mean-pooled).
  std::vector<double> Featurize(const minihouse::BoundQuery& query) const;

  void Serialize(BufferWriter* writer) const;
  static Result<MscnModel> Deserialize(BufferReader* reader);

  static constexpr int kJoinHashDim = 16;
  static constexpr int kColumnHashDim = 24;
  static constexpr int kOpDim = 8;

 private:
  int feature_dim() const;

  std::vector<std::string> table_names_;  // one-hot universe
  // Per "table.column": (min, max) numeric range for value normalization.
  std::map<std::string, std::pair<double, double>> column_ranges_;
  Mlp network_;
};

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_BASELINES_MSCN_H_
