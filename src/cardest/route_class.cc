#include "cardest/route_class.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace bytecard::cardest {

std::string PredicateShapeToken(const minihouse::ColumnPredicate& pred) {
  std::string token = std::to_string(pred.column) + ":" +
                      std::to_string(static_cast<int>(pred.op));
  if (!pred.in_list.empty()) token += ":in";
  return token;
}

std::string TableShape(const minihouse::Table& table,
                       const minihouse::Conjunction& filters) {
  std::vector<std::string> parts;
  parts.reserve(filters.size());
  for (const minihouse::ColumnPredicate& pred : filters) {
    parts.push_back(PredicateShapeToken(pred));
  }
  std::sort(parts.begin(), parts.end());
  std::string shape = table.name();
  shape += "(";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) shape += "&";
    shape += parts[i];
  }
  shape += ")";
  return shape;
}

namespace {

// Table shape via the session memo when one is given.
const std::string* ShapeOf(const minihouse::BoundQuery& query, int table_idx,
                           InferenceSession* session, std::string* storage) {
  if (session != nullptr) return &session->TableShapeToken(query, table_idx);
  const minihouse::BoundTableRef& ref = query.tables[table_idx];
  *storage = TableShape(*ref.table, ref.filters);
  return storage;
}

}  // namespace

std::string SubplanShape(const minihouse::BoundQuery& query,
                         const std::vector<int>& subset,
                         InferenceSession* session) {
  if (subset.size() == 1) {
    std::string storage;
    return *ShapeOf(query, subset[0], session, &storage);
  }

  // Same self-join disambiguation as SubplanKey: duplicated shape tokens are
  // suffixed with their query-table index so distinct join prefixes keep
  // distinct classes. Shapes collapse more aggressively than fingerprints
  // (same columns + ops, different operands), which is exactly the point —
  // a class is the template, not the instance.
  const int num_tables = query.num_tables();
  std::vector<std::string> all_shapes(num_tables);
  std::map<std::string, int> shape_counts;
  for (int t = 0; t < num_tables; ++t) {
    std::string storage;
    all_shapes[t] = *ShapeOf(query, t, session, &storage);
    ++shape_counts[all_shapes[t]];
  }

  std::vector<std::string> table_shapes;  // indexed by position in `subset`
  table_shapes.reserve(subset.size());
  for (int t : subset) {
    std::string shape = all_shapes[t];
    if (shape_counts[shape] > 1) shape += "#" + std::to_string(t);
    table_shapes.push_back(std::move(shape));
  }

  auto shape_of = [&](int query_table) -> const std::string* {
    for (size_t i = 0; i < subset.size(); ++i) {
      if (subset[i] == query_table) return &table_shapes[i];
    }
    return nullptr;
  };

  std::vector<std::string> edge_tokens;
  for (const minihouse::JoinEdge& e : query.joins) {
    const std::string* lt = shape_of(e.left_table);
    const std::string* rt = shape_of(e.right_table);
    if (lt == nullptr || rt == nullptr) continue;  // edge leaves the subset
    std::string a = *lt + "." + std::to_string(e.left_column);
    std::string b = *rt + "." + std::to_string(e.right_column);
    if (b < a) std::swap(a, b);  // direction-independent
    edge_tokens.push_back(a + "=" + b);
  }

  std::sort(table_shapes.begin(), table_shapes.end());
  std::sort(edge_tokens.begin(), edge_tokens.end());
  std::string shape = "J(";
  for (size_t i = 0; i < table_shapes.size(); ++i) {
    if (i > 0) shape += ",";
    shape += table_shapes[i];
  }
  shape += ";";
  for (size_t i = 0; i < edge_tokens.size(); ++i) {
    if (i > 0) shape += ",";
    shape += edge_tokens[i];
  }
  shape += ")";
  return shape;
}

std::string GroupShape(const minihouse::BoundQuery& query,
                       InferenceSession* session) {
  std::vector<int> scratch;
  const std::vector<int>* all;
  if (session != nullptr) {
    all = &session->AllTables(query.num_tables());
  } else {
    scratch.resize(query.tables.size());
    std::iota(scratch.begin(), scratch.end(), 0);
    all = &scratch;
  }
  std::string shape = "G(";
  shape += SubplanShape(query, *all, session);
  std::vector<std::string> group_tokens;
  group_tokens.reserve(query.group_by.size());
  for (const minihouse::GroupKeyRef& g : query.group_by) {
    group_tokens.push_back(query.tables[g.table].table->name() + "." +
                           std::to_string(g.column));
  }
  std::sort(group_tokens.begin(), group_tokens.end());
  for (const std::string& tok : group_tokens) {
    shape += ";";
    shape += tok;
  }
  shape += ")";
  return shape;
}

std::string RouteClassOf(const CardEstRequest& request,
                         InferenceSession* session) {
  switch (request.target) {
    case CardEstTarget::kSelectivity:
      return TableShape(*request.table, *request.filters);
    case CardEstTarget::kJoinCount: {
      std::vector<int> scratch;
      return SubplanShape(*request.query,
                          request.ResolveTables(session, &scratch), session);
    }
    case CardEstTarget::kGroupNdv:
      return GroupShape(*request.query, session);
    case CardEstTarget::kColumnNdv:
      return "V(" + TableShape(*request.table, *request.filters) + ";" +
             std::to_string(request.ndv_column) + ")";
    case CardEstTarget::kDisjunction: {
      std::vector<std::string> bodies;
      bodies.reserve(request.disjuncts->size());
      for (const minihouse::Conjunction& d : *request.disjuncts) {
        std::vector<std::string> parts;
        parts.reserve(d.size());
        for (const minihouse::ColumnPredicate& pred : d) {
          parts.push_back(PredicateShapeToken(pred));
        }
        std::sort(parts.begin(), parts.end());
        std::string body = "(";
        for (size_t i = 0; i < parts.size(); ++i) {
          if (i > 0) body += "&";
          body += parts[i];
        }
        body += ")";
        bodies.push_back(std::move(body));
      }
      std::sort(bodies.begin(), bodies.end());
      std::string shape = "O(" + request.table->name() + ";";
      for (size_t i = 0; i < bodies.size(); ++i) {
        if (i > 0) shape += "|";
        shape += bodies[i];
      }
      shape += ")";
      return shape;
    }
  }
  return std::string();
}

}  // namespace bytecard::cardest
