#ifndef BYTECARD_CARDEST_DISCRETIZER_H_
#define BYTECARD_CARDEST_DISCRETIZER_H_

#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "minihouse/column.h"
#include "minihouse/predicate.h"

namespace bytecard::cardest {

// Maps a column's numeric domain onto a small dense bin space — the
// categorical alphabet every learned model (BN CPDs, SPN leaves, FactorJoin
// buckets) operates on. Two build modes:
//
//  * value-aligned: when the column's NDV fits max_bins, each distinct value
//    gets its own bin (exact predicates);
//  * equi-height ranges: otherwise bins are value ranges holding roughly
//    equal row counts, with per-bin distinct counts for uniform-within-bin
//    interpolation.
//
// Join columns use boundaries supplied by the FactorJoin join-bucket
// builder (BuildWithBoundaries) so that all tables sharing a join key group
// discretize identically.
class Discretizer {
 public:
  struct Bin {
    int64_t lo = 0;  // inclusive
    int64_t hi = 0;  // inclusive
    int64_t distinct = 1;
  };

  Discretizer() = default;

  static Discretizer Build(const std::vector<int64_t>& values, int max_bins);
  static Discretizer BuildFromColumn(const minihouse::Column& column,
                                     int max_bins);

  // Builds bins from explicit inclusive upper bounds (sorted ascending); the
  // first bin starts at INT64_MIN, each next at previous hi + 1. Distinct
  // counts are computed from `values`.
  static Discretizer BuildWithBoundaries(
      const std::vector<int64_t>& upper_bounds,
      const std::vector<int64_t>& values);

  int num_bins() const { return static_cast<int>(bins_.size()); }
  const std::vector<Bin>& bins() const { return bins_; }

  // Bin index of `value` (values outside all ranges clamp to nearest bin).
  int BinOf(int64_t value) const;

  // Per-bin weight in [0, 1]: estimated fraction of the bin's rows whose
  // value satisfies `pred`, assuming uniform value frequency within a bin.
  // Exact (0/1) for value-aligned bins. This is the evidence vector the BN's
  // variable-elimination inference consumes.
  std::vector<double> PredicateWeights(
      const minihouse::ColumnPredicate& pred) const;

  void Serialize(BufferWriter* writer) const;
  static Result<Discretizer> Deserialize(BufferReader* reader);

 private:
  std::vector<Bin> bins_;
};

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_DISCRETIZER_H_
