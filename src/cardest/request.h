#ifndef BYTECARD_CARDEST_REQUEST_H_
#define BYTECARD_CARDEST_REQUEST_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "minihouse/query.h"

namespace bytecard::cardest {

class InferenceSession;

// --- Canonical estimation-request IR -----------------------------------------
// Every estimation question the engine asks — scan selectivity, join-subset
// cardinality, GROUP BY output NDV, COUNT(DISTINCT col), OR-query counts —
// is one CardEstRequest: a target kind plus non-owning views into the bound
// query it is asked about (paper §4.2's uniform Featurize→Estimate contract,
// lifted from per-model to the whole serving path). The request carries the
// *one* canonical fingerprint implementation in the tree; the optimizer's
// per-query memos, the runtime feedback cache, and operator stamping all key
// on Fingerprint(), so the three layers can never disagree about "what
// subplan is this estimate for".
//
// Lifetime: a request borrows its query/table/filter referents from the
// caller. It is a call-scoped value — build it, hand it to
// CardinalityEstimator::Estimate / EstimatorSnapshot::Estimate, let it die.
// Never store one beyond the statements that created it.

enum class CardEstTarget {
  kSelectivity,  // fraction of `table`'s rows matching `filters`, in [0, 1]
  kJoinCount,    // COUNT(*) of the join of `table_set` under its filters
  kGroupNdv,     // distinct group keys of `query`'s GROUP BY output
  kColumnNdv,    // COUNT(DISTINCT ndv_column) on `table` under `filters`
  kDisjunction,  // COUNT(*) of the union of `disjuncts` on `table`
};

struct CardEstRequest {
  CardEstTarget target = CardEstTarget::kSelectivity;

  // Join-shaped targets (kJoinCount, kGroupNdv).
  const minihouse::BoundQuery* query = nullptr;
  // Tables the estimate covers (indices into query->tables). Null with
  // all_tables set means "every table of the query" — the fast path that
  // avoids materializing an iota vector per EstimateCount call.
  const std::vector<int>* table_set = nullptr;
  bool all_tables = false;

  // Table-shaped targets (kSelectivity, kColumnNdv, kDisjunction).
  const minihouse::Table* table = nullptr;
  const minihouse::Conjunction* filters = nullptr;
  int ndv_column = -1;
  const std::vector<minihouse::Conjunction>* disjuncts = nullptr;

  // --- Factories (the only supported way to build a request) ----------------
  static CardEstRequest Selectivity(const minihouse::Table& table,
                                    const minihouse::Conjunction& filters);
  static CardEstRequest JoinCount(const minihouse::BoundQuery& query,
                                  const std::vector<int>& table_set);
  // Whole-query COUNT(*): kJoinCount over every table, without allocating
  // the all-tables vector (resolved lazily via ResolveTables).
  static CardEstRequest Count(const minihouse::BoundQuery& query);
  static CardEstRequest GroupNdv(const minihouse::BoundQuery& query);
  static CardEstRequest ColumnNdv(const minihouse::Table& table, int column,
                                  const minihouse::Conjunction& filters);
  static CardEstRequest Disjunction(
      const minihouse::Table& table,
      const std::vector<minihouse::Conjunction>& disjuncts);

  // The concrete table set of a join-shaped request. All-tables requests
  // resolve through the session's cached iota when one is given; otherwise
  // `scratch` is filled and referenced. `scratch` must outlive the returned
  // reference.
  const std::vector<int>& ResolveTables(InferenceSession* session,
                                        std::vector<int>* scratch) const;

  // The canonical cross-query identity of this request (see the token
  // grammar below). `session` is optional and only memoizes per-table token
  // construction — the returned string is byte-identical with or without it.
  std::string Fingerprint(InferenceSession* session = nullptr) const;
};

// --- Canonical fingerprint tokens --------------------------------------------
// The token grammar (stable across queries; the feedback cache persists these
// strings between queries):
//   predicate   "col:op:operand:operand2[:v1,v2,...]"  (IN-list suffix only
//                when present), order-independent of its siblings
//   table       "name{p1&p2&...}" with predicate tokens sorted
//   join        "J[t1,t2,...;e1,e2,...]" with table tokens sorted and each
//                edge normalized so its lexicographically smaller endpoint
//                comes first (enumeration-order- and direction-independent);
//                a one-element subset reduces to the bare table token so scan
//                and selectivity questions share keys. Self-join refs whose
//                content tokens collide are suffixed "#<query-table-index>"
//                so distinct join prefixes keep distinct keys
//   group NDV   "G[<join-of-all-tables>;tbl.col;...]" group keys sorted
//   column NDV  "V[<table>;col]"
//   disjunction "O[name;{d1}|{d2}|...]" with each disjunct's predicate tokens
//                sorted and the disjunct bodies sorted
std::string PredicateToken(const minihouse::ColumnPredicate& pred);
std::string TableKey(const minihouse::Table& table,
                     const minihouse::Conjunction& filters);
std::string SubplanKey(const minihouse::BoundQuery& query,
                       const std::vector<int>& subset,
                       InferenceSession* session = nullptr);
std::string GroupNdvKey(const minihouse::BoundQuery& query,
                        InferenceSession* session = nullptr);

// --- Per-query inference session ---------------------------------------------
// Scratch state for one query's estimation work. The optimizer's join-order
// search probes the estimator once per candidate subset, and every probe
// re-derives the same per-table ingredients: BN selectivities, FactorJoin
// filtered-bucket-count vectors, canonical table tokens. The session memoizes
// those ingredients so each is computed once per query instead of once per
// subset probe.
//
// Lifetime rules: one session per query, created by EstimationContext (or a
// bench/test harness) and destroyed with it; it must never outlive the
// snapshot whose probes it caches, and must never be shared across queries or
// threads (concurrent queries each bring their own — the snapshot itself
// stays lock-free and shared). Passing null everywhere a session is accepted
// is always valid and changes no estimate, only the work done to produce it.
class InferenceSession {
 public:
  struct Stats {
    int64_t probe_cache_hits = 0;    // scalar + bucket-vector memo hits
    int64_t probe_cache_misses = 0;  // first-time probes (stored)
  };

  InferenceSession() = default;
  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  // Scalar probe memo (BN selectivities, fallback selectivities).
  // `was_fallback` round-trips with the value so callers can replay
  // fallback accounting on hits — counters stay byte-identical to the
  // memoization-free path.
  bool LookupScalar(const std::string& key, double* value,
                    bool* was_fallback);
  void StoreScalar(const std::string& key, double value, bool was_fallback);

  // FactorJoin filtered-bucket-count memo. Returns null on a miss; the
  // pointer stays valid until the session dies (values are never evicted).
  const std::vector<double>* LookupBuckets(const std::string& key,
                                           double* total_out);
  void StoreBuckets(const std::string& key, std::vector<double> counts,
                    double total);

  // Cached iota [0, n) for all-tables requests (grown on demand).
  const std::vector<int>& AllTables(int n);

  // Canonical table token of query.tables[table_idx], memoized — subplan
  // fingerprints during join ordering re-tokenize the same tables for every
  // candidate subset.
  const std::string& TableToken(const minihouse::BoundQuery& query,
                                int table_idx);

  // Operand-free twin of TableToken: the table's *shape* (route_class.h).
  // Route resolution runs on every estimate when a routing table is live, so
  // the per-table shape is memoized exactly like the fingerprint token.
  const std::string& TableShapeToken(const minihouse::BoundQuery& query,
                                     int table_idx);

  const Stats& stats() const { return stats_; }

 private:
  struct ScalarEntry {
    double value = 0.0;
    bool was_fallback = false;
  };
  struct BucketEntry {
    std::vector<double> counts;
    double total = 0.0;
  };

  std::unordered_map<std::string, ScalarEntry> scalars_;
  std::unordered_map<std::string, BucketEntry> buckets_;
  std::vector<int> all_tables_;
  // Keyed by (query identity, table index): sessions are per-query, but the
  // cheap guard keeps a stray cross-query reuse from serving stale tokens.
  std::map<std::pair<const void*, int>, std::string> table_tokens_;
  std::map<std::pair<const void*, int>, std::string> table_shapes_;
  Stats stats_;
};

}  // namespace bytecard::cardest

#endif  // BYTECARD_CARDEST_REQUEST_H_
