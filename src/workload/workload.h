#ifndef BYTECARD_WORKLOAD_WORKLOAD_H_
#define BYTECARD_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "minihouse/database.h"
#include "workload/query_gen.h"

namespace bytecard::workload {

// A named workload: the unit the evaluation section operates on.
struct Workload {
  std::string name;
  std::string dataset;
  std::vector<WorkloadQuery> queries;
  int num_join_templates = 0;
};

struct WorkloadOptions {
  int num_count_queries = 0;  // cardinality probes (possibly huge true card)
  int num_agg_queries = 0;    // executable aggregation queries
  // Executable queries are rejected and regenerated while their true
  // cardinality exceeds this (keeps Figure 5/6 runs laptop-scale).
  int64_t max_executable_count = 60000;
  uint64_t seed = 2024;
};

// Assembles the paper's workloads on our generated datasets:
//   JOB-Hybrid     (imdb):   100 queries, 23 join templates, 2-5 tables
//   STATS-Hybrid   (stats):  200 queries, 70 join templates, 2-8 tables
//   AEOLUS-Online  (aeolus): 200 queries, 2-5 tables, 2-4 group-by keys
// `name` is one of "JOB-Hybrid" | "STATS-Hybrid" | "AEOLUS-Online";
// option fields left at 0 take the workload's Table 5 defaults.
Result<Workload> BuildWorkload(const minihouse::Database& db,
                               const std::string& name,
                               WorkloadOptions options);

// Dataset name for a workload name ("JOB-Hybrid" -> "imdb", ...).
Result<std::string> DatasetOf(const std::string& workload_name);

// Table 5's row set, computed from a workload plus the truth oracle.
struct WorkloadStats {
  int num_queries = 0;
  int num_join_templates = 0;
  int min_joined_tables = 0;
  int max_joined_tables = 0;
  int min_group_keys = 0;
  int max_group_keys = 0;
  double min_true_cardinality = 0.0;
  double max_true_cardinality = 0.0;
  int queries_at_max_tables = 0;
  int queries_at_max_group_keys = 0;
};
Result<WorkloadStats> ComputeWorkloadStats(const Workload& workload);

}  // namespace bytecard::workload

#endif  // BYTECARD_WORKLOAD_WORKLOAD_H_
