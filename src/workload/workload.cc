#include "workload/workload.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "workload/truth.h"

namespace bytecard::workload {

namespace {

struct WorkloadProfile {
  const char* dataset;
  int count_queries;
  int agg_queries;
  int max_tables;
  int max_templates;
  int min_group_keys;
  int max_group_keys;
};

Result<WorkloadProfile> ProfileOf(const std::string& name) {
  if (name == "JOB-Hybrid") {
    return WorkloadProfile{"imdb", 70, 30, 5, 23, 1, 2};
  }
  if (name == "STATS-Hybrid") {
    return WorkloadProfile{"stats", 140, 60, 8, 70, 1, 2};
  }
  if (name == "AEOLUS-Online") {
    return WorkloadProfile{"aeolus", 130, 70, 5, 15, 2, 4};
  }
  return Status::InvalidArgument("unknown workload '" + name + "'");
}

}  // namespace

Result<std::string> DatasetOf(const std::string& workload_name) {
  BC_ASSIGN_OR_RETURN(WorkloadProfile profile, ProfileOf(workload_name));
  return std::string(profile.dataset);
}

Result<Workload> BuildWorkload(const minihouse::Database& db,
                               const std::string& name,
                               WorkloadOptions options) {
  BC_ASSIGN_OR_RETURN(WorkloadProfile profile, ProfileOf(name));
  if (options.num_count_queries == 0) {
    options.num_count_queries = profile.count_queries;
  }
  if (options.num_agg_queries == 0) {
    options.num_agg_queries = profile.agg_queries;
  }

  Workload workload;
  workload.name = name;
  workload.dataset = profile.dataset;

  const std::vector<JoinTemplate> templates = EnumerateJoinTemplates(
      profile.dataset, profile.max_tables, profile.max_templates);
  if (templates.empty()) {
    return Status::Internal("no join templates for '" + name + "'");
  }
  workload.num_join_templates = static_cast<int>(templates.size());

  QueryGenOptions gen_options;
  gen_options.min_group_keys = profile.min_group_keys;
  gen_options.max_group_keys = profile.max_group_keys;
  gen_options.seed = options.seed;
  Rng rng(options.seed);

  // Cardinality probes: round-robin over templates; ensure the largest
  // template appears (Table 5 counts queries hitting the max joined-table).
  for (int q = 0; q < options.num_count_queries; ++q) {
    const JoinTemplate& tmpl = templates[q % templates.size()];
    BC_ASSIGN_OR_RETURN(WorkloadQuery wq,
                        GenerateCountQuery(db, tmpl, gen_options, &rng));
    workload.queries.push_back(std::move(wq));
  }

  // Executable aggregation queries: reject-and-retry until the true result
  // size fits the executable budget. Prefer small templates (2-3 tables) for
  // most, as real dashboards do.
  std::vector<const JoinTemplate*> small_templates;
  for (const JoinTemplate& tmpl : templates) {
    if (tmpl.tables.size() <= 3) small_templates.push_back(&tmpl);
  }
  if (small_templates.empty()) {
    for (const JoinTemplate& tmpl : templates) {
      small_templates.push_back(&tmpl);
    }
  }
  for (int q = 0; q < options.num_agg_queries; ++q) {
    const JoinTemplate& tmpl =
        *small_templates[q % small_templates.size()];
    WorkloadQuery accepted;
    bool ok = false;
    for (int attempt = 0; attempt < 12 && !ok; ++attempt) {
      BC_ASSIGN_OR_RETURN(WorkloadQuery wq,
                          GenerateAggregateQuery(db, tmpl, gen_options, &rng));
      BC_ASSIGN_OR_RETURN(const int64_t truth, TrueCount(wq.query));
      if (truth > 0 && truth <= options.max_executable_count) {
        accepted = std::move(wq);
        ok = true;
      }
    }
    if (!ok) continue;  // this template resists small outputs; skip slot
    workload.queries.push_back(std::move(accepted));
  }
  return workload;
}

Result<WorkloadStats> ComputeWorkloadStats(const Workload& workload) {
  WorkloadStats stats;
  stats.num_queries = static_cast<int>(workload.queries.size());
  stats.num_join_templates = workload.num_join_templates;
  if (workload.queries.empty()) return stats;

  stats.min_joined_tables = workload.queries[0].num_tables;
  stats.max_joined_tables = workload.queries[0].num_tables;
  bool first_card = true;

  for (const WorkloadQuery& wq : workload.queries) {
    stats.min_joined_tables = std::min(stats.min_joined_tables, wq.num_tables);
    stats.max_joined_tables = std::max(stats.max_joined_tables, wq.num_tables);
    if (wq.aggregate) {
      if (stats.max_group_keys == 0) {
        stats.min_group_keys = wq.num_group_keys;
      }
      stats.min_group_keys = std::min(
          stats.min_group_keys == 0 ? wq.num_group_keys : stats.min_group_keys,
          wq.num_group_keys);
      stats.max_group_keys = std::max(stats.max_group_keys, wq.num_group_keys);
    }
    BC_ASSIGN_OR_RETURN(const int64_t truth, TrueCount(wq.query));
    const double t = static_cast<double>(truth);
    if (first_card) {
      stats.min_true_cardinality = stats.max_true_cardinality = t;
      first_card = false;
    } else {
      stats.min_true_cardinality = std::min(stats.min_true_cardinality, t);
      stats.max_true_cardinality = std::max(stats.max_true_cardinality, t);
    }
  }
  for (const WorkloadQuery& wq : workload.queries) {
    if (wq.num_tables == stats.max_joined_tables) {
      ++stats.queries_at_max_tables;
    }
    if (wq.aggregate && wq.num_group_keys == stats.max_group_keys) {
      ++stats.queries_at_max_group_keys;
    }
  }
  return stats;
}

}  // namespace bytecard::workload
