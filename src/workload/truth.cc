#include "workload/truth.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "minihouse/executor.h"
#include "minihouse/predicate.h"

namespace bytecard::workload {

namespace {

using minihouse::BoundQuery;

// One directed edge of the rooted join tree.
struct TreeEdge {
  int child = -1;
  int child_column = -1;
  int parent_column = -1;
};

}  // namespace

Result<int64_t> TrueCount(const BoundQuery& query) {
  const int n = query.num_tables();
  if (n == 0) return Status::InvalidArgument("query has no tables");

  // Filtered-row selection per table.
  std::vector<std::vector<uint8_t>> selection(n);
  for (int t = 0; t < n; ++t) {
    minihouse::EvaluateConjunction(query.tables[t].filters,
                                   *query.tables[t].table, &selection[t]);
  }

  if (n == 1) {
    int64_t count = 0;
    for (uint8_t s : selection[0]) count += s;
    return count;
  }

  // Root the join tree at table 0 and orient the edges. A cyclic or
  // disconnected join graph is rejected (workload templates are spanning
  // trees by construction).
  if (static_cast<int>(query.joins.size()) != n - 1) {
    return Status::InvalidArgument(
        "TrueCount requires a tree-shaped join graph");
  }
  std::vector<std::vector<TreeEdge>> children(n);
  std::vector<int> parent(n, -2);
  parent[0] = -1;
  std::vector<int> order = {0};
  std::vector<bool> used_edge(query.joins.size(), false);
  for (size_t i = 0; i < order.size(); ++i) {
    const int v = order[i];
    for (size_t e = 0; e < query.joins.size(); ++e) {
      if (used_edge[e]) continue;
      const minihouse::JoinEdge& edge = query.joins[e];
      int child = -1;
      TreeEdge te;
      if (edge.left_table == v && parent[edge.right_table] == -2) {
        child = edge.right_table;
        te = {child, edge.right_column, edge.left_column};
      } else if (edge.right_table == v && parent[edge.left_table] == -2) {
        child = edge.left_table;
        te = {child, edge.left_column, edge.right_column};
      } else {
        continue;
      }
      used_edge[e] = true;
      parent[child] = v;
      children[v].push_back(te);
      order.push_back(child);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return Status::InvalidArgument("join graph is cyclic or disconnected");
  }

  // Bottom-up count messages: msg[t] maps the child's join-key value to the
  // number of join combinations in t's subtree carrying that key. Doubles
  // are exact below 2^53, far above the counts seen here.
  std::vector<std::unordered_map<int64_t, double>> msg(n);
  for (size_t i = order.size(); i-- > 0;) {
    const int t = order[i];
    const minihouse::Table& table = *query.tables[t].table;
    const bool is_root = parent[t] == -1;
    std::unordered_map<int64_t, double>& out = msg[t];
    double root_total = 0.0;

    for (int64_t r = 0; r < table.num_rows(); ++r) {
      if (selection[t][r] == 0) continue;
      double weight = 1.0;
      for (const TreeEdge& edge : children[t]) {
        const int64_t key =
            table.column(edge.parent_column).NumericAt(r);
        auto it = msg[edge.child].find(key);
        if (it == msg[edge.child].end()) {
          weight = 0.0;
          break;
        }
        weight *= it->second;
      }
      if (weight == 0.0) continue;
      if (is_root) {
        root_total += weight;
      } else {
        // Key under which the parent will look this subtree up: the child
        // column of the edge to the parent.
        int child_col = -1;
        for (const TreeEdge& edge : children[parent[t]]) {
          if (edge.child == t) {
            child_col = edge.child_column;
            break;
          }
        }
        BC_CHECK(child_col >= 0);
        out[table.column(child_col).NumericAt(r)] += weight;
      }
    }
    if (is_root) {
      return static_cast<int64_t>(root_total);
    }
  }
  return Status::Internal("unreachable: join tree had no root");
}

Result<int64_t> TrueColumnNdv(const minihouse::Table& table, int column,
                              const minihouse::Conjunction& filters) {
  if (column < 0 || column >= table.num_columns()) {
    return Status::InvalidArgument("NDV column out of range");
  }
  std::vector<uint8_t> selection;
  minihouse::EvaluateConjunction(filters, table, &selection);
  std::unordered_set<int64_t> distinct;
  const minihouse::Column& col = table.column(column);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    if (selection[r] != 0) distinct.insert(col.NumericAt(r));
  }
  return static_cast<int64_t>(distinct.size());
}

Result<int64_t> TrueGroupCount(const BoundQuery& query) {
  minihouse::PhysicalPlan plan;
  plan.scans.resize(query.tables.size());
  BC_ASSIGN_OR_RETURN(minihouse::ExecResult result,
                      minihouse::ExecuteQuery(query, plan));
  return result.agg.num_groups;
}

}  // namespace bytecard::workload
