#include "workload/query_gen.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_set>

#include "common/logging.h"

namespace bytecard::workload {

namespace {

using minihouse::BoundQuery;
using minihouse::ColumnPredicate;
using minihouse::CompareOp;
using minihouse::Database;
using minihouse::DataType;
using minihouse::Table;

// ---------------------------------------------------------------------------
// Template enumeration
// ---------------------------------------------------------------------------

std::vector<SchemaJoinEdge> SpanningEdges(
    const std::vector<SchemaJoinEdge>& all_edges,
    const std::set<std::string>& tables) {
  std::map<std::string, std::string> parent;
  auto find_root = [&](std::string x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const std::string& t : tables) parent[t] = t;
  std::vector<SchemaJoinEdge> edges;
  for (const SchemaJoinEdge& e : all_edges) {
    if (tables.count(e.left_table) == 0 || tables.count(e.right_table) == 0) {
      continue;
    }
    const std::string ra = find_root(e.left_table);
    const std::string rb = find_root(e.right_table);
    if (ra == rb) continue;
    parent[ra] = rb;
    edges.push_back(e);
  }
  return edges;
}

bool IsConnected(const std::vector<SchemaJoinEdge>& all_edges,
                 const std::set<std::string>& tables) {
  return SpanningEdges(all_edges, tables).size() == tables.size() - 1;
}

}  // namespace

std::vector<JoinTemplate> EnumerateJoinTemplates(const std::string& dataset,
                                                 int max_tables,
                                                 int max_templates) {
  const std::vector<SchemaJoinEdge> all_edges = SchemaJoins(dataset);
  std::set<std::string> universe;
  for (const SchemaJoinEdge& e : all_edges) {
    universe.insert(e.left_table);
    universe.insert(e.right_table);
  }
  const std::vector<std::string> tables(universe.begin(), universe.end());
  const int n = static_cast<int>(tables.size());

  // Enumerate all subsets (n <= 8 everywhere), keep connected ones, order by
  // size then lexicographically — deterministic template ids.
  std::vector<JoinTemplate> templates;
  std::vector<std::pair<int, uint32_t>> ordered;  // (size, mask)
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    const int size = __builtin_popcount(mask);
    if (size < 2 || size > max_tables) continue;
    ordered.push_back({size, mask});
  }
  std::sort(ordered.begin(), ordered.end());

  for (const auto& [size, mask] : ordered) {
    (void)size;
    std::set<std::string> subset;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset.insert(tables[i]);
    }
    if (!IsConnected(all_edges, subset)) continue;
    JoinTemplate tmpl;
    tmpl.tables.assign(subset.begin(), subset.end());
    tmpl.edges = SpanningEdges(all_edges, subset);
    templates.push_back(std::move(tmpl));
  }
  if (static_cast<int>(templates.size()) <= max_templates) return templates;

  // Cap while keeping size coverage: the paper's workloads exercise the full
  // joined-table range (e.g. STATS-CEB reaches 8 tables), so reserve one
  // template per size from the largest down, then fill smallest-first.
  std::vector<JoinTemplate> selected;
  std::vector<bool> taken(templates.size(), false);
  for (int size = max_tables; size >= 2; --size) {
    for (size_t i = 0; i < templates.size(); ++i) {
      if (!taken[i] && static_cast<int>(templates[i].tables.size()) == size) {
        taken[i] = true;
        selected.push_back(templates[i]);
        break;
      }
    }
    if (static_cast<int>(selected.size()) >= max_templates) break;
  }
  for (size_t i = 0;
       i < templates.size() &&
       static_cast<int>(selected.size()) < max_templates;
       ++i) {
    if (!taken[i]) {
      taken[i] = true;
      selected.push_back(templates[i]);
    }
  }
  std::sort(selected.begin(), selected.end(),
            [](const JoinTemplate& a, const JoinTemplate& b) {
              if (a.tables.size() != b.tables.size()) {
                return a.tables.size() < b.tables.size();
              }
              return a.tables < b.tables;
            });
  return selected;
}

// ---------------------------------------------------------------------------
// Query generation helpers
// ---------------------------------------------------------------------------

namespace {

Result<BoundQuery> BindTemplate(const Database& db, const JoinTemplate& tmpl) {
  BoundQuery query;
  for (const std::string& name : tmpl.tables) {
    BC_ASSIGN_OR_RETURN(const Table* table, db.FindTable(name));
    minihouse::BoundTableRef ref;
    ref.table = table;
    ref.alias = name;
    query.tables.push_back(std::move(ref));
  }
  auto index_of = [&](const std::string& name) {
    for (int i = 0; i < query.num_tables(); ++i) {
      if (query.tables[i].alias == name) return i;
    }
    return -1;
  };
  for (const SchemaJoinEdge& e : tmpl.edges) {
    const int lt = index_of(e.left_table);
    const int rt = index_of(e.right_table);
    const int lc = query.tables[lt].table->FindColumnIndex(e.left_column);
    const int rc = query.tables[rt].table->FindColumnIndex(e.right_column);
    if (lc < 0 || rc < 0) return Status::Internal("bad template edge");
    query.joins.push_back(minihouse::JoinEdge{lt, lc, rt, rc});
  }
  return query;
}

// Columns usable in generated predicates: int64 or string, and not a join
// key of this query occurrence.
std::vector<int> PredicateColumns(const BoundQuery& query, int table_idx) {
  std::set<int> join_cols;
  for (const minihouse::JoinEdge& e : query.joins) {
    if (e.left_table == table_idx) join_cols.insert(e.left_column);
    if (e.right_table == table_idx) join_cols.insert(e.right_column);
  }
  std::vector<int> columns;
  const Table& table = *query.tables[table_idx].table;
  for (int c = 0; c < table.num_columns(); ++c) {
    const DataType type = table.schema().column(c).type;
    if (type != DataType::kInt64 && type != DataType::kString) continue;
    if (join_cols.count(c) > 0) continue;
    columns.push_back(c);
  }
  return columns;
}

ColumnPredicate MakePredicate(const Table& table, int column, Rng* rng) {
  const minihouse::Column& col = table.column(column);
  ColumnPredicate pred;
  pred.column = column;
  pred.column_name = table.schema().column(column).name;
  const int64_t anchor =
      col.NumericAt(static_cast<int64_t>(rng->Uniform(table.num_rows())));

  if (table.schema().column(column).type == DataType::kString) {
    // Strings: equality/IN only (JOB-light has no string ranges).
    if (rng->NextDouble() < 0.7) {
      pred.op = CompareOp::kEq;
      pred.operand = anchor;
    } else {
      pred.op = CompareOp::kIn;
      std::unordered_set<int64_t> values = {anchor};
      // Bounded draws: low-NDV columns may not have 3 distinct values.
      for (int attempt = 0; attempt < 32 && values.size() < 3; ++attempt) {
        values.insert(col.NumericAt(
            static_cast<int64_t>(rng->Uniform(table.num_rows()))));
      }
      pred.in_list.assign(values.begin(), values.end());
      std::sort(pred.in_list.begin(), pred.in_list.end());
    }
    return pred;
  }

  const double p = rng->NextDouble();
  if (p < 0.3) {
    pred.op = CompareOp::kEq;
    pred.operand = anchor;
  } else if (p < 0.5) {
    pred.op = CompareOp::kLe;
    pred.operand = anchor;
  } else if (p < 0.7) {
    pred.op = CompareOp::kGe;
    pred.operand = anchor;
  } else if (p < 0.9) {
    const int64_t anchor2 =
        col.NumericAt(static_cast<int64_t>(rng->Uniform(table.num_rows())));
    pred.op = CompareOp::kBetween;
    pred.operand = std::min(anchor, anchor2);
    pred.operand2 = std::max(anchor, anchor2);
  } else {
    pred.op = CompareOp::kIn;
    std::unordered_set<int64_t> values = {anchor};
    // Bounded draws: low-NDV columns may not have 4 distinct values.
    for (int attempt = 0; attempt < 32 && values.size() < 4; ++attempt) {
      values.insert(col.NumericAt(
          static_cast<int64_t>(rng->Uniform(table.num_rows()))));
    }
    pred.in_list.assign(values.begin(), values.end());
    std::sort(pred.in_list.begin(), pred.in_list.end());
  }
  return pred;
}

std::string OperandToSql(const Table& table, const ColumnPredicate& pred,
                         int64_t value) {
  if (table.schema().column(pred.column).type == DataType::kString) {
    const auto& dict = table.column(pred.column).dictionary();
    if (value >= 0 && value < static_cast<int64_t>(dict.size())) {
      return "'" + dict[value] + "'";
    }
    return "'?'";
  }
  return std::to_string(value);
}

std::string RenderSql(const BoundQuery& query) {
  std::ostringstream os;
  os << "SELECT ";
  bool first_item = true;
  for (const minihouse::GroupKeyRef& g : query.group_by) {
    if (!first_item) os << ", ";
    first_item = false;
    os << query.tables[g.table].alias << "."
       << query.tables[g.table].table->schema().column(g.column).name;
  }
  for (const minihouse::AggSpecRef& a : query.aggs) {
    if (!first_item) os << ", ";
    first_item = false;
    switch (a.func) {
      case minihouse::AggFunc::kCountStar:
        os << "COUNT(*)";
        break;
      case minihouse::AggFunc::kCount:
      case minihouse::AggFunc::kCountDistinct:
      case minihouse::AggFunc::kSum:
      case minihouse::AggFunc::kAvg: {
        const char* fn = a.func == minihouse::AggFunc::kSum   ? "SUM"
                         : a.func == minihouse::AggFunc::kAvg ? "AVG"
                                                              : "COUNT";
        os << fn << "(";
        if (a.func == minihouse::AggFunc::kCountDistinct) os << "DISTINCT ";
        os << query.tables[a.table].alias << "."
           << query.tables[a.table].table->schema().column(a.column).name
           << ")";
        break;
      }
    }
  }
  os << " FROM ";
  for (int t = 0; t < query.num_tables(); ++t) {
    if (t > 0) os << ", ";
    os << query.tables[t].table->name();
    if (query.tables[t].alias != query.tables[t].table->name()) {
      os << " " << query.tables[t].alias;
    }
  }
  bool first_cond = true;
  auto conj = [&]() -> std::ostream& {
    os << (first_cond ? " WHERE " : " AND ");
    first_cond = false;
    return os;
  };
  for (const minihouse::JoinEdge& e : query.joins) {
    conj() << query.tables[e.left_table].alias << "."
           << query.tables[e.left_table].table->schema().column(e.left_column).name
           << " = " << query.tables[e.right_table].alias << "."
           << query.tables[e.right_table]
                  .table->schema()
                  .column(e.right_column)
                  .name;
  }
  for (int t = 0; t < query.num_tables(); ++t) {
    const Table& table = *query.tables[t].table;
    for (const ColumnPredicate& pred : query.tables[t].filters) {
      conj() << query.tables[t].alias << "." << pred.column_name << " ";
      if (pred.op == CompareOp::kIn) {
        os << "IN (";
        for (size_t i = 0; i < pred.in_list.size(); ++i) {
          if (i > 0) os << ", ";
          os << OperandToSql(table, pred, pred.in_list[i]);
        }
        os << ")";
      } else if (pred.op == CompareOp::kBetween) {
        os << "BETWEEN " << OperandToSql(table, pred, pred.operand) << " AND "
           << OperandToSql(table, pred, pred.operand2);
      } else {
        os << minihouse::CompareOpName(pred.op) << " "
           << OperandToSql(table, pred, pred.operand);
      }
    }
  }
  if (!query.group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < query.group_by.size(); ++i) {
      if (i > 0) os << ", ";
      const minihouse::GroupKeyRef& g = query.group_by[i];
      os << query.tables[g.table].alias << "."
         << query.tables[g.table].table->schema().column(g.column).name;
    }
  }
  return os.str();
}

void AddRandomFilters(BoundQuery* query, const QueryGenOptions& options,
                      Rng* rng) {
  for (int t = 0; t < query->num_tables(); ++t) {
    if (rng->NextDouble() > options.predicate_probability) continue;
    std::vector<int> columns = PredicateColumns(*query, t);
    if (columns.empty()) continue;
    rng->Shuffle(&columns);
    const int want = 1 + static_cast<int>(rng->Uniform(std::min<size_t>(
                             options.max_predicates_per_table,
                             columns.size())));
    for (int i = 0; i < want; ++i) {
      query->tables[t].filters.push_back(
          MakePredicate(*query->tables[t].table, columns[i], rng));
    }
  }
}

}  // namespace

Result<WorkloadQuery> GenerateCountQuery(const Database& db,
                                         const JoinTemplate& tmpl,
                                         const QueryGenOptions& options,
                                         Rng* rng) {
  BC_ASSIGN_OR_RETURN(BoundQuery query, BindTemplate(db, tmpl));
  AddRandomFilters(&query, options, rng);
  query.aggs.push_back(
      minihouse::AggSpecRef{minihouse::AggFunc::kCountStar, -1, -1});

  WorkloadQuery wq;
  wq.num_tables = query.num_tables();
  wq.sql = RenderSql(query);
  query.sql = wq.sql;
  wq.query = std::move(query);
  return wq;
}

Result<WorkloadQuery> GenerateAggregateQuery(const Database& db,
                                             const JoinTemplate& tmpl,
                                             const QueryGenOptions& options,
                                             Rng* rng) {
  BC_ASSIGN_OR_RETURN(BoundQuery query, BindTemplate(db, tmpl));
  AddRandomFilters(&query, options, rng);

  // Group keys: sampled per-column distinct estimate biases the choice
  // toward categorical columns, with an occasional high-NDV key (the
  // hash-table-resize-stress case of Figure 6b).
  const int num_keys =
      options.min_group_keys +
      static_cast<int>(rng->Uniform(
          options.max_group_keys - options.min_group_keys + 1));
  std::vector<std::pair<int, int>> candidates;  // (table, column)
  for (int t = 0; t < query.num_tables(); ++t) {
    for (int c : PredicateColumns(query, t)) {
      candidates.push_back({t, c});
    }
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("template has no group-key candidates");
  }
  rng->Shuffle(&candidates);

  auto sampled_ndv = [&](int t, int c) {
    const Table& table = *query.tables[t].table;
    std::unordered_set<int64_t> seen;
    const int64_t probes = std::min<int64_t>(400, table.num_rows());
    for (int64_t i = 0; i < probes; ++i) {
      seen.insert(table.column(c).NumericAt(
          static_cast<int64_t>(rng->Uniform(table.num_rows()))));
    }
    return static_cast<int>(seen.size());
  };

  const bool want_high_ndv = rng->NextDouble() < 0.3;
  for (const auto& [t, c] : candidates) {
    if (static_cast<int>(query.group_by.size()) >= num_keys) break;
    const int ndv = sampled_ndv(t, c);
    const bool low_card = ndv <= 64;
    if (want_high_ndv ? !low_card : low_card) {
      query.group_by.push_back(minihouse::GroupKeyRef{t, c});
    }
  }
  // Backfill if the bias filter left us short.
  for (const auto& [t, c] : candidates) {
    if (static_cast<int>(query.group_by.size()) >= num_keys) break;
    const bool already =
        std::any_of(query.group_by.begin(), query.group_by.end(),
                    [&](const minihouse::GroupKeyRef& g) {
                      return g.table == t && g.column == c;
                    });
    if (!already) query.group_by.push_back(minihouse::GroupKeyRef{t, c});
  }

  // Aggregates: COUNT(*) plus an occasional SUM/AVG/COUNT DISTINCT.
  query.aggs.push_back(
      minihouse::AggSpecRef{minihouse::AggFunc::kCountStar, -1, -1});
  if (rng->NextDouble() < 0.6 && !candidates.empty()) {
    const auto& [t, c] = candidates[rng->Uniform(candidates.size())];
    const double p = rng->NextDouble();
    const minihouse::AggFunc func = p < 0.4   ? minihouse::AggFunc::kSum
                                    : p < 0.8 ? minihouse::AggFunc::kAvg
                                              : minihouse::AggFunc::kCountDistinct;
    query.aggs.push_back(minihouse::AggSpecRef{func, t, c});
  }

  WorkloadQuery wq;
  wq.aggregate = true;
  wq.num_tables = query.num_tables();
  wq.num_group_keys = static_cast<int>(query.group_by.size());
  wq.sql = RenderSql(query);
  query.sql = wq.sql;
  wq.query = std::move(query);
  return wq;
}

Result<NdvProbe> GenerateNdvProbe(const Database& db,
                                  const std::string& table_name,
                                  const QueryGenOptions& options, Rng* rng) {
  BC_ASSIGN_OR_RETURN(const Table* table, db.FindTable(table_name));
  if (table->num_rows() == 0) {
    return Status::InvalidArgument("empty table");
  }
  std::vector<int> columns;
  for (int c = 0; c < table->num_columns(); ++c) {
    const DataType type = table->schema().column(c).type;
    if (type == DataType::kInt64 || type == DataType::kString) {
      columns.push_back(c);
    }
  }
  if (columns.size() < 1) {
    return Status::InvalidArgument("no NDV-probe columns");
  }
  NdvProbe probe;
  probe.table = table_name;
  probe.column = columns[rng->Uniform(columns.size())];

  const int num_filters = static_cast<int>(
      rng->Uniform(std::min<size_t>(options.max_predicates_per_table + 1,
                                    columns.size())));
  std::vector<int> filter_columns;
  for (int c : columns) {
    if (c != probe.column) filter_columns.push_back(c);
  }
  rng->Shuffle(&filter_columns);
  for (int i = 0; i < num_filters && i < static_cast<int>(filter_columns.size());
       ++i) {
    probe.filters.push_back(MakePredicate(*table, filter_columns[i], rng));
  }
  return probe;
}

}  // namespace bytecard::workload
