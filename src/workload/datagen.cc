#include "workload/datagen.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <map>

#include "common/logging.h"
#include "common/rng.h"

namespace bytecard::workload {

namespace {

using minihouse::ColumnDef;
using minihouse::Database;
using minihouse::DataType;
using minihouse::Table;
using minihouse::TableSchema;

int64_t Scaled(int64_t base, double scale) {
  return std::max<int64_t>(100, static_cast<int64_t>(base * scale));
}

// Maps a Zipf-popularity rank onto the key domain through a per-table
// bijection (odd multiplier modulo the domain size). Every table keeps its
// own skewed fanout distribution (breaking join uniformity), but popularity
// ranks are decorrelated ACROSS tables — matching real schemas, where a
// movie with many cast entries is not automatically the movie with the most
// keywords. Without this, expected join fanouts compound multiplicatively
// and the join-size tail becomes astronomically heavy.
int64_t PermutedKey(uint64_t rank, int64_t domain, uint64_t table_salt) {
  const uint64_t mult = (table_salt * 2654435761ULL) | 1ULL;
  return static_cast<int64_t>((rank * mult + table_salt) %
                              static_cast<uint64_t>(domain));
}

std::unique_ptr<Table> MakeTable(const std::string& name,
                                 std::vector<ColumnDef> columns) {
  return std::make_unique<Table>(name, TableSchema(std::move(columns)));
}

// ---------------------------------------------------------------------------
// IMDB-like (JOB-light star around `title`)
// ---------------------------------------------------------------------------

std::unique_ptr<Table> MakeTitle(int64_t rows, Rng* rng) {
  auto table = MakeTable("title", {{"id", DataType::kInt64},
                                   {"kind_id", DataType::kInt64},
                                   {"production_year", DataType::kInt64},
                                   {"phonetic_code", DataType::kInt64},
                                   {"season_nr", DataType::kInt64}});
  ZipfDistribution kind_dist(7, 1.1);
  ZipfDistribution season_dist(31, 1.4);
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t kind = static_cast<int64_t>(kind_dist.Sample(rng));
    // production_year depends on BOTH kind (TV kinds skew recent) and the
    // title's popularity rank (low ids = classics with many satellite rows):
    // year-range filters therefore shift the join-key distribution, which
    // learned models capture and histograms cannot.
    const double rank_year =
        1915.0 + 95.0 * static_cast<double>(i) / static_cast<double>(rows);
    const double mean_year = rank_year + 6.0 * static_cast<double>(kind);
    int64_t year = static_cast<int64_t>(mean_year + rng->NextGaussian() * 9.0);
    year = std::clamp<int64_t>(year, 1900, 2025);
    // phonetic_code tracks year (another in-table correlation).
    const int64_t phonetic =
        std::clamp<int64_t>((year - 1900) * 8 + rng->UniformInt(-40, 40), 0, 999);
    table->mutable_column(0)->AppendInt(i);
    table->mutable_column(1)->AppendInt(kind);
    table->mutable_column(2)->AppendInt(year);
    table->mutable_column(3)->AppendInt(phonetic);
    table->mutable_column(4)->AppendInt(
        kind >= 4 ? static_cast<int64_t>(season_dist.Sample(rng)) : 0);
  }
  return table;
}

std::unique_ptr<Table> MakeMovieSatellite(
    const std::string& name, int64_t rows, int64_t num_titles,
    const std::vector<std::pair<std::string, int64_t>>& attr_domains,
    double attr_skew, Rng* rng) {
  std::vector<ColumnDef> columns = {{"movie_id", DataType::kInt64}};
  for (const auto& [attr, _] : attr_domains) {
    columns.push_back({attr, DataType::kInt64});
  }
  auto table = MakeTable(name, columns);

  // Popularity-skewed FK: a mixture of the shared ranking (popular classics
  // are popular in every satellite — moderate cross-table fanout
  // correlation) and a per-table permuted ranking (each satellite also has
  // its own hot keys). Within-table skew breaks join uniformity; the
  // mixture keeps the cross-table tail heavy but bounded.
  ZipfDistribution movie_dist(static_cast<uint64_t>(num_titles), 1.1);
  const uint64_t salt = std::hash<std::string>{}(name);
  std::vector<ZipfDistribution> attr_dists;
  for (const auto& [_, domain] : attr_domains) {
    attr_dists.emplace_back(static_cast<uint64_t>(domain), attr_skew);
  }
  for (int64_t i = 0; i < rows; ++i) {
    const uint64_t rank = movie_dist.Sample(rng);
    const bool shared = rng->NextDouble() < 0.4;
    const int64_t movie = shared ? static_cast<int64_t>(rank)
                                 : PermutedKey(rank, num_titles, salt);
    table->mutable_column(0)->AppendInt(movie);
    const bool popular = movie < num_titles / 16;
    for (size_t a = 0; a < attr_dists.size(); ++a) {
      int64_t value = static_cast<int64_t>(attr_dists[a].Sample(rng));
      // Attributes correlate with the movie's popularity: filters on them
      // shift the join-key distribution (e.g. lead roles concentrate on
      // popular movies) — the filter/fanout interaction Selinger misses.
      if (popular) value /= 2;
      table->mutable_column(static_cast<int>(a) + 1)->AppendInt(value);
    }
  }
  return table;
}

// ---------------------------------------------------------------------------
// STATS-like (Stack-Exchange schema)
// ---------------------------------------------------------------------------

std::unique_ptr<Table> MakeUsers(int64_t rows, Rng* rng) {
  auto table = MakeTable("users", {{"id", DataType::kInt64},
                                   {"reputation", DataType::kInt64},
                                   {"up_votes", DataType::kInt64},
                                   {"down_votes", DataType::kInt64},
                                   {"creation_year", DataType::kInt64}});
  for (int64_t i = 0; i < rows; ++i) {
    // Long-tailed reputation; up/down votes strongly correlated with it —
    // the classic independence-assumption killer.
    const double rep_raw = std::exp(rng->NextDouble() * 9.0);
    const int64_t rep = 1 + static_cast<int64_t>(rep_raw);
    const int64_t up =
        static_cast<int64_t>(rep * (0.1 + rng->NextDouble() * 0.4));
    const int64_t down =
        static_cast<int64_t>(up * (0.05 + rng->NextDouble() * 0.2));
    table->mutable_column(0)->AppendInt(i);
    table->mutable_column(1)->AppendInt(rep);
    table->mutable_column(2)->AppendInt(up);
    table->mutable_column(3)->AppendInt(down);
    table->mutable_column(4)->AppendInt(rng->UniformInt(2008, 2014));
  }
  return table;
}

std::unique_ptr<Table> MakePosts(int64_t rows, int64_t num_users, Rng* rng) {
  auto table = MakeTable("posts", {{"id", DataType::kInt64},
                                   {"owner_user_id", DataType::kInt64},
                                   {"score", DataType::kInt64},
                                   {"view_count", DataType::kInt64},
                                   {"answer_count", DataType::kInt64},
                                   {"post_type", DataType::kInt64}});
  ZipfDistribution owner_dist(static_cast<uint64_t>(num_users), 1.0);
  ZipfDistribution score_dist(120, 1.6);
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t owner =
        PermutedKey(owner_dist.Sample(rng), num_users, 0x70757374);
    const int64_t score = static_cast<int64_t>(score_dist.Sample(rng)) - 2;
    // view_count tracks score (superlinear), answer_count tracks post_type.
    const int64_t views = std::max<int64_t>(
        0, static_cast<int64_t>((score + 3) * (20 + rng->UniformInt(0, 60))));
    const int64_t post_type = rng->NextDouble() < 0.6 ? 1 : 2;
    const int64_t answers =
        post_type == 1 ? rng->UniformInt(0, 8) : 0;
    table->mutable_column(0)->AppendInt(i);
    table->mutable_column(1)->AppendInt(owner);
    table->mutable_column(2)->AppendInt(score);
    table->mutable_column(3)->AppendInt(views);
    table->mutable_column(4)->AppendInt(answers);
    table->mutable_column(5)->AppendInt(post_type);
  }
  return table;
}

std::unique_ptr<Table> MakeFkPair(
    const std::string& name, int64_t rows, const std::string& fk1,
    int64_t dom1, const std::string& fk2, int64_t dom2,
    const std::string& attr, int64_t attr_domain, double attr_skew,
    Rng* rng) {
  auto table = MakeTable(name, {{fk1, DataType::kInt64},
                                {fk2, DataType::kInt64},
                                {attr, DataType::kInt64}});
  ZipfDistribution d1(static_cast<uint64_t>(dom1), 1.1);
  ZipfDistribution d2(static_cast<uint64_t>(dom2), 1.0);
  ZipfDistribution da(static_cast<uint64_t>(attr_domain), attr_skew);
  const uint64_t salt = std::hash<std::string>{}(name);
  for (int64_t i = 0; i < rows; ++i) {
    const uint64_t rank1 = d1.Sample(rng);
    const int64_t fk1 = rng->NextDouble() < 0.4
                            ? static_cast<int64_t>(rank1)
                            : PermutedKey(rank1, dom1, salt);
    const uint64_t rank2 = d2.Sample(rng);
    const int64_t fk2 = rng->NextDouble() < 0.4
                            ? static_cast<int64_t>(rank2)
                            : PermutedKey(rank2, dom2, salt ^ 0x9e37);
    table->mutable_column(0)->AppendInt(fk1);
    table->mutable_column(1)->AppendInt(fk2);
    int64_t attr = static_cast<int64_t>(da.Sample(rng));
    // Attribute correlates with the referenced post's popularity.
    if (fk1 < dom1 / 16) attr /= 2;
    table->mutable_column(2)->AppendInt(attr);
  }
  return table;
}

// ---------------------------------------------------------------------------
// AEOLUS-like (advertising analytics)
// ---------------------------------------------------------------------------

std::unique_ptr<Table> MakeAdvertisers(int64_t rows, Rng* rng) {
  auto table = MakeTable("advertisers", {{"id", DataType::kInt64},
                                         {"industry", DataType::kInt64},
                                         {"tier", DataType::kInt64}});
  ZipfDistribution industry_dist(20, 1.0);
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t industry = static_cast<int64_t>(industry_dist.Sample(rng));
    table->mutable_column(0)->AppendInt(i);
    table->mutable_column(1)->AppendInt(industry);
    // Tier tracks industry (big industries concentrate in tier 0).
    table->mutable_column(2)->AppendInt(industry < 4 ? 0
                                        : industry < 12
                                            ? rng->UniformInt(0, 1)
                                            : rng->UniformInt(1, 2));
  }
  return table;
}

std::unique_ptr<Table> MakeCampaigns(int64_t rows, int64_t num_advertisers,
                                     Rng* rng) {
  auto table = MakeTable("campaigns", {{"id", DataType::kInt64},
                                       {"advertiser_id", DataType::kInt64},
                                       {"budget_tier", DataType::kInt64},
                                       {"objective", DataType::kInt64}});
  ZipfDistribution adv_dist(static_cast<uint64_t>(num_advertisers), 1.1);
  ZipfDistribution obj_dist(6, 1.2);
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t adv = static_cast<int64_t>(adv_dist.Sample(rng));
    table->mutable_column(0)->AppendInt(i);
    table->mutable_column(1)->AppendInt(adv);
    // Budget tier tracks the campaign's event volume (head campaigns are the
    // big-budget ones): a budget_tier filter therefore selects campaigns
    // with far-above-uniform join fanout, which breaks Selinger's
    // join-uniformity assumption while the BN's (id-bucket, tier) edge
    // captures it.
    table->mutable_column(2)->AppendInt(i < rows / 10
                                            ? rng->UniformInt(2, 3)
                                            : rng->UniformInt(0, 2));
    table->mutable_column(3)->AppendInt(
        static_cast<int64_t>(obj_dist.Sample(rng)));
  }
  return table;
}

std::unique_ptr<Table> MakeRegions(int64_t rows, Rng* rng) {
  auto table = MakeTable("regions", {{"id", DataType::kInt64},
                                     {"country", DataType::kString},
                                     {"tz", DataType::kInt64}});
  // Order-preserving dictionary of country codes.
  std::vector<std::string> countries;
  for (char a = 'A'; a <= 'Z'; ++a) {
    for (char b = 'A'; b <= 'Z'; b += 7) {
      countries.push_back(std::string(1, a) + b);
    }
  }
  std::sort(countries.begin(), countries.end());
  table->mutable_column(1)->SetDictionary(countries);
  for (int64_t i = 0; i < rows; ++i) {
    table->mutable_column(0)->AppendInt(i);
    table->mutable_column(1)->AppendCode(
        static_cast<int64_t>(rng->Uniform(countries.size())));
    table->mutable_column(2)->AppendInt(rng->UniformInt(0, 23));
  }
  return table;
}

std::unique_ptr<Table> MakeCreatives(int64_t rows, int64_t num_campaigns,
                                     Rng* rng) {
  auto table = MakeTable("creatives", {{"id", DataType::kInt64},
                                       {"campaign_id", DataType::kInt64},
                                       {"content_type", DataType::kInt64},
                                       {"duration", DataType::kInt64}});
  ZipfDistribution camp_dist(static_cast<uint64_t>(num_campaigns), 1.0);
  for (int64_t i = 0; i < rows; ++i) {
    const uint64_t camp_rank = camp_dist.Sample(rng);
    const int64_t camp = rng->NextDouble() < 0.4
                             ? static_cast<int64_t>(camp_rank)
                             : PermutedKey(camp_rank, num_campaigns, 0xc4ea);
    const int64_t content = (camp % 4) * 2 + rng->UniformInt(0, 1);
    table->mutable_column(0)->AppendInt(i);
    table->mutable_column(1)->AppendInt(camp);
    table->mutable_column(2)->AppendInt(content);
    // Duration depends on content type: video types run long.
    table->mutable_column(3)->AppendInt(
        content >= 4 ? rng->UniformInt(30, 120) : rng->UniformInt(5, 30));
  }
  return table;
}

std::unique_ptr<Table> MakeAdEvents(int64_t rows, int64_t num_campaigns,
                                    int64_t num_regions, Rng* rng) {
  // Rows are generated, then physically ordered by event_date below —
  // event logs land in time order, which is what makes block skipping on
  // date ranges (and the multi-stage column-order choice) meaningful.
  auto table = MakeTable("ad_events", {{"ad_id", DataType::kInt64},
                                       {"campaign_id", DataType::kInt64},
                                       {"platform", DataType::kInt64},
                                       {"content_type", DataType::kInt64},
                                       {"region_id", DataType::kInt64},
                                       {"event_date", DataType::kInt64},
                                       {"cost", DataType::kFloat64},
                                       {"tags", DataType::kArray}});
  // ad_id: very high NDV with mild skew — the column family that pushed the
  // paper to add RBX calibration.
  ZipfDistribution ad_dist(static_cast<uint64_t>(std::max<int64_t>(2, rows / 2)),
                           0.5);
  ZipfDistribution camp_dist(static_cast<uint64_t>(num_campaigns), 1.0);
  ZipfDistribution region_dist(static_cast<uint64_t>(num_regions), 1.2);
  ZipfDistribution platform_dist(5, 1.0);
  for (int64_t i = 0; i < rows; ++i) {
    const uint64_t camp_rank = camp_dist.Sample(rng);
    // Popularity mixture (see PermutedKey): big campaigns are big both here
    // and in creatives, with table-local hot keys on top.
    const int64_t camp = rng->NextDouble() < 0.4
                             ? static_cast<int64_t>(camp_rank)
                             : PermutedKey(camp_rank, num_campaigns, 0xade7);
    // Big-budget campaigns concentrate on the premium platforms, so platform
    // filters shift the join-key distribution (filter/fanout correlation).
    int64_t platform = static_cast<int64_t>(platform_dist.Sample(rng));
    if (camp < num_campaigns / 16 && rng->NextDouble() < 0.7) {
      platform = rng->UniformInt(0, 1);
    }
    // The paper's Fig. 3 dependency: ContentType | TargetPlatform is highly
    // concentrated (each platform favors ~2 of 8 content types).
    int64_t content = platform * 2 + (rng->NextDouble() < 0.85
                                          ? rng->UniformInt(0, 1)
                                          : rng->UniformInt(-2, 3));
    content = std::clamp<int64_t>(content, 0, 9);
    // Event date clusters per campaign (flights).
    const int64_t flight_start = (camp * 37) % 300;
    const int64_t date = flight_start + rng->UniformInt(0, 64);

    table->mutable_column(0)->AppendInt(
        static_cast<int64_t>(ad_dist.Sample(rng)));
    table->mutable_column(1)->AppendInt(camp);
    table->mutable_column(2)->AppendInt(platform);
    table->mutable_column(3)->AppendInt(content);
    // Campaigns target a handful of regions: region filters therefore
    // reshape the campaign-key distribution (and vice versa).
    const int64_t region =
        rng->NextDouble() < 0.6
            ? (camp * 13 + rng->UniformInt(0, 2)) % num_regions
            : static_cast<int64_t>(region_dist.Sample(rng));
    table->mutable_column(4)->AppendInt(region);
    table->mutable_column(5)->AppendInt(date);
    // Cost depends on platform (CPM differs per platform).
    table->mutable_column(6)->AppendDouble(
        std::exp(rng->NextGaussian() * 0.5) * (1.0 + 0.8 * platform));
    table->mutable_column(7)->AppendArray(
        {rng->UniformInt(0, 9), rng->UniformInt(0, 9)});
  }

  // Physically cluster by event_date (see above).
  std::vector<int64_t> order(rows);
  std::iota(order.begin(), order.end(), 0);
  const minihouse::Column& date_col = table->column(5);
  std::stable_sort(order.begin(), order.end(),
                   [&](int64_t a, int64_t b) {
                     return date_col.NumericAt(a) < date_col.NumericAt(b);
                   });
  auto sorted = MakeTable("ad_events", {{"ad_id", DataType::kInt64},
                                        {"campaign_id", DataType::kInt64},
                                        {"platform", DataType::kInt64},
                                        {"content_type", DataType::kInt64},
                                        {"region_id", DataType::kInt64},
                                        {"event_date", DataType::kInt64},
                                        {"cost", DataType::kFloat64},
                                        {"tags", DataType::kArray}});
  for (int64_t r : order) {
    for (int c = 0; c < 6; ++c) {
      sorted->mutable_column(c)->AppendInt(table->column(c).NumericAt(r));
    }
    sorted->mutable_column(6)->AppendDouble(table->column(6).DoubleAt(r));
    sorted->mutable_column(7)->AppendArray({});
  }
  return sorted;
}

}  // namespace

Result<std::unique_ptr<Database>> GenerateImdb(double scale, uint64_t seed) {
  Rng rng(seed);
  auto db = std::make_unique<Database>();
  const int64_t titles = Scaled(30000, scale);

  auto title = MakeTitle(titles, &rng);
  BC_RETURN_IF_ERROR(title->Seal());
  BC_RETURN_IF_ERROR(db->AddTable(std::move(title)));

  struct Sat {
    const char* name;
    int64_t rows;
    std::vector<std::pair<std::string, int64_t>> attrs;
    double skew;
  };
  const std::vector<Sat> satellites = {
      {"movie_companies", Scaled(60000, scale),
       {{"company_id", 8000}, {"company_type_id", 2}}, 1.1},
      {"cast_info", Scaled(90000, scale),
       {{"person_id", 30000}, {"role_id", 12}}, 1.2},
      {"movie_info", Scaled(60000, scale), {{"info_type_id", 110}}, 1.3},
      {"movie_info_idx", Scaled(40000, scale), {{"info_type_id", 6}}, 1.0},
      {"movie_keyword", Scaled(60000, scale), {{"keyword_id", 10000}}, 1.25},
  };
  for (const Sat& sat : satellites) {
    auto table =
        MakeMovieSatellite(sat.name, sat.rows, titles, sat.attrs, sat.skew,
                           &rng);
    BC_RETURN_IF_ERROR(table->Seal());
    BC_RETURN_IF_ERROR(db->AddTable(std::move(table)));
  }
  return db;
}

Result<std::unique_ptr<Database>> GenerateStats(double scale, uint64_t seed) {
  Rng rng(seed);
  auto db = std::make_unique<Database>();
  const int64_t num_users = Scaled(15000, scale);
  const int64_t num_posts = Scaled(30000, scale);

  auto users = MakeUsers(num_users, &rng);
  BC_RETURN_IF_ERROR(users->Seal());
  BC_RETURN_IF_ERROR(db->AddTable(std::move(users)));

  auto posts = MakePosts(num_posts, num_users, &rng);
  BC_RETURN_IF_ERROR(posts->Seal());
  BC_RETURN_IF_ERROR(db->AddTable(std::move(posts)));

  struct Pair {
    const char* name;
    int64_t rows;
    const char* fk1;
    int64_t dom1;
    const char* fk2;
    int64_t dom2;
    const char* attr;
    int64_t attr_domain;
    double skew;
  };
  const std::vector<Pair> pairs = {
      {"comments", Scaled(50000, scale), "post_id", num_posts, "user_id",
       num_users, "score", 11, 1.8},
      {"votes", Scaled(40000, scale), "post_id", num_posts, "user_id",
       num_users, "vote_type", 15, 1.5},
      {"postHistory", Scaled(35000, scale), "post_id", num_posts, "user_id",
       num_users, "history_type", 20, 1.4},
  };
  for (const Pair& p : pairs) {
    auto table = MakeFkPair(p.name, p.rows, p.fk1, p.dom1, p.fk2, p.dom2,
                            p.attr, p.attr_domain, p.skew, &rng);
    BC_RETURN_IF_ERROR(table->Seal());
    BC_RETURN_IF_ERROR(db->AddTable(std::move(table)));
  }

  // badges(user_id, date_year)
  {
    auto table = MakeTable("badges", {{"user_id", DataType::kInt64},
                                      {"date_year", DataType::kInt64}});
    ZipfDistribution user_dist(static_cast<uint64_t>(num_users), 1.1);
    const int64_t rows = Scaled(20000, scale);
    for (int64_t i = 0; i < rows; ++i) {
      table->mutable_column(0)->AppendInt(
          PermutedKey(user_dist.Sample(&rng), num_users, 0xbad6e5));
      table->mutable_column(1)->AppendInt(rng.UniformInt(2008, 2014));
    }
    BC_RETURN_IF_ERROR(table->Seal());
    BC_RETURN_IF_ERROR(db->AddTable(std::move(table)));
  }
  // postLinks(post_id, related_post_id, link_type)
  {
    auto table = MakeTable("postLinks", {{"post_id", DataType::kInt64},
                                         {"related_post_id", DataType::kInt64},
                                         {"link_type", DataType::kInt64}});
    ZipfDistribution post_dist(static_cast<uint64_t>(num_posts), 1.0);
    const int64_t rows = Scaled(12000, scale);
    for (int64_t i = 0; i < rows; ++i) {
      table->mutable_column(0)->AppendInt(
          PermutedKey(post_dist.Sample(&rng), num_posts, 0x715b));
      table->mutable_column(1)->AppendInt(rng.UniformInt(0, num_posts - 1));
      table->mutable_column(2)->AppendInt(rng.NextDouble() < 0.8 ? 1 : 3);
    }
    BC_RETURN_IF_ERROR(table->Seal());
    BC_RETURN_IF_ERROR(db->AddTable(std::move(table)));
  }
  // tags(id, count, excerpt_post_id)
  {
    auto table = MakeTable("tags", {{"id", DataType::kInt64},
                                    {"count", DataType::kInt64},
                                    {"excerpt_post_id", DataType::kInt64}});
    ZipfDistribution count_dist(5000, 1.5);
    const int64_t rows = Scaled(3000, scale);
    for (int64_t i = 0; i < rows; ++i) {
      table->mutable_column(0)->AppendInt(i);
      table->mutable_column(1)->AppendInt(
          static_cast<int64_t>(count_dist.Sample(&rng)));
      table->mutable_column(2)->AppendInt(rng.UniformInt(0, num_posts - 1));
    }
    BC_RETURN_IF_ERROR(table->Seal());
    BC_RETURN_IF_ERROR(db->AddTable(std::move(table)));
  }
  return db;
}

Result<std::unique_ptr<Database>> GenerateAeolus(double scale, uint64_t seed) {
  Rng rng(seed);
  auto db = std::make_unique<Database>();
  const int64_t num_advertisers = Scaled(500, std::sqrt(scale));
  const int64_t num_campaigns = Scaled(3000, std::sqrt(scale));
  const int64_t num_regions = 200;

  auto advertisers = MakeAdvertisers(num_advertisers, &rng);
  BC_RETURN_IF_ERROR(advertisers->Seal());
  BC_RETURN_IF_ERROR(db->AddTable(std::move(advertisers)));

  auto campaigns = MakeCampaigns(num_campaigns, num_advertisers, &rng);
  BC_RETURN_IF_ERROR(campaigns->Seal());
  BC_RETURN_IF_ERROR(db->AddTable(std::move(campaigns)));

  auto regions = MakeRegions(num_regions, &rng);
  BC_RETURN_IF_ERROR(regions->Seal());
  BC_RETURN_IF_ERROR(db->AddTable(std::move(regions)));

  auto creatives = MakeCreatives(Scaled(8000, scale), num_campaigns, &rng);
  BC_RETURN_IF_ERROR(creatives->Seal());
  BC_RETURN_IF_ERROR(db->AddTable(std::move(creatives)));

  auto events =
      MakeAdEvents(Scaled(70000, scale), num_campaigns, num_regions, &rng);
  BC_RETURN_IF_ERROR(events->Seal());
  BC_RETURN_IF_ERROR(db->AddTable(std::move(events)));
  return db;
}

Result<std::unique_ptr<Database>> GenerateDataset(const std::string& name,
                                                  double scale,
                                                  uint64_t seed) {
  if (name == "imdb") return GenerateImdb(scale, seed);
  if (name == "stats") return GenerateStats(scale, seed);
  if (name == "aeolus") return GenerateAeolus(scale, seed);
  return Status::InvalidArgument("unknown dataset '" + name + "'");
}

std::vector<SchemaJoinEdge> SchemaJoins(const std::string& dataset) {
  if (dataset == "imdb") {
    return {
        {"movie_companies", "movie_id", "title", "id"},
        {"cast_info", "movie_id", "title", "id"},
        {"movie_info", "movie_id", "title", "id"},
        {"movie_info_idx", "movie_id", "title", "id"},
        {"movie_keyword", "movie_id", "title", "id"},
    };
  }
  if (dataset == "stats") {
    return {
        {"posts", "owner_user_id", "users", "id"},
        {"comments", "post_id", "posts", "id"},
        {"comments", "user_id", "users", "id"},
        {"badges", "user_id", "users", "id"},
        {"votes", "post_id", "posts", "id"},
        {"votes", "user_id", "users", "id"},
        {"postHistory", "post_id", "posts", "id"},
        {"postHistory", "user_id", "users", "id"},
        {"postLinks", "post_id", "posts", "id"},
        {"tags", "excerpt_post_id", "posts", "id"},
    };
  }
  if (dataset == "aeolus") {
    return {
        {"ad_events", "campaign_id", "campaigns", "id"},
        {"campaigns", "advertiser_id", "advertisers", "id"},
        {"ad_events", "region_id", "regions", "id"},
        {"creatives", "campaign_id", "campaigns", "id"},
    };
  }
  return {};
}

Result<minihouse::BoundQuery> FullJoinTemplate(const Database& db,
                                               const std::string& dataset) {
  minihouse::BoundQuery query;
  const std::vector<SchemaJoinEdge> edges = SchemaJoins(dataset);
  if (edges.empty()) {
    return Status::InvalidArgument("unknown dataset '" + dataset + "'");
  }

  auto table_index = [&](const std::string& name) -> Result<int> {
    for (int i = 0; i < query.num_tables(); ++i) {
      if (query.tables[i].table->name() == name) return i;
    }
    BC_ASSIGN_OR_RETURN(const Table* table, db.FindTable(name));
    minihouse::BoundTableRef ref;
    ref.table = table;
    ref.alias = name;
    query.tables.push_back(std::move(ref));
    return query.num_tables() - 1;
  };

  // Keep only a spanning tree of the schema join graph: denormalization
  // follows FK paths; cyclic edges (e.g. "comment author is also the post
  // author") would over-constrain the join.
  std::map<std::string, std::string> parent;
  std::function<std::string(std::string)> find_root =
      [&](std::string x) -> std::string {
    while (parent.count(x) > 0 && parent[x] != x) x = parent[x];
    return x;
  };
  for (const SchemaJoinEdge& edge : edges) {
    const std::string ra = find_root(edge.left_table);
    const std::string rb = find_root(edge.right_table);
    if (ra == rb && !ra.empty() && parent.count(edge.left_table) > 0 &&
        parent.count(edge.right_table) > 0) {
      continue;  // would close a cycle
    }
    parent.try_emplace(edge.left_table, edge.left_table);
    parent.try_emplace(edge.right_table, edge.right_table);
    parent[find_root(edge.left_table)] = find_root(edge.right_table);

    BC_ASSIGN_OR_RETURN(const int lt, table_index(edge.left_table));
    BC_ASSIGN_OR_RETURN(const int rt, table_index(edge.right_table));
    const int lc =
        query.tables[lt].table->FindColumnIndex(edge.left_column);
    const int rc =
        query.tables[rt].table->FindColumnIndex(edge.right_column);
    if (lc < 0 || rc < 0) {
      return Status::Internal("schema join column missing");
    }
    query.joins.push_back(minihouse::JoinEdge{lt, lc, rt, rc});
  }
  query.aggs.push_back(
      minihouse::AggSpecRef{minihouse::AggFunc::kCountStar, -1, -1});
  return query;
}

}  // namespace bytecard::workload
