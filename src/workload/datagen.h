#ifndef BYTECARD_WORKLOAD_DATAGEN_H_
#define BYTECARD_WORKLOAD_DATAGEN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "minihouse/database.h"
#include "minihouse/query.h"

namespace bytecard::workload {

// Synthetic stand-ins for the paper's three datasets. Real IMDB/STATS data
// and the proprietary AEOLUS workload are unavailable here; these generators
// reproduce the properties that drive cardinality-estimation difficulty —
// schema/join graph shape, Zipf-skewed foreign keys (join-uniformity
// violations), strong cross-column correlations (independence violations),
// and high-NDV columns (the RBX-hard case). All generation is seeded and
// deterministic so exact true cardinalities are reproducible.
//
// `scale` linearly multiplies row counts (scale 1.0 is a laptop-friendly
// base; the Figure 6 benches sweep it).

// IMDB-like: the 6-table JOB-light star around `title` (movie_companies,
// cast_info, movie_info, movie_info_idx, movie_keyword join on movie_id).
Result<std::unique_ptr<minihouse::Database>> GenerateImdb(double scale,
                                                          uint64_t seed);

// STATS-like: the 8-table Stack-Exchange schema of STATS-CEB (users, posts,
// comments, badges, votes, postHistory, postLinks, tags).
Result<std::unique_ptr<minihouse::Database>> GenerateStats(double scale,
                                                           uint64_t seed);

// AEOLUS-like: a 5-table advertising-analytics schema (ad_events fact +
// campaigns, advertisers, creatives, regions) with heavy skew, a
// Platform->ContentType dependency (the paper's Fig. 3 example), an Array
// column (exercises column selection), and very high-NDV id columns.
Result<std::unique_ptr<minihouse::Database>> GenerateAeolus(double scale,
                                                            uint64_t seed);

// Dispatch by dataset name ("imdb" | "stats" | "aeolus").
Result<std::unique_ptr<minihouse::Database>> GenerateDataset(
    const std::string& name, double scale, uint64_t seed);

// The dataset's schema-level join edges, as "t1.col = t2.col" SQL conjuncts
// joined with table list — used for join-pattern collection, the full-join
// denormalization template, and join-template enumeration.
struct SchemaJoinEdge {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
};
std::vector<SchemaJoinEdge> SchemaJoins(const std::string& dataset);

// A BoundQuery joining every table of the dataset along SchemaJoins (no
// filters) — the denormalization template for DeepDB/BayesCard training.
Result<minihouse::BoundQuery> FullJoinTemplate(
    const minihouse::Database& db, const std::string& dataset);

}  // namespace bytecard::workload

#endif  // BYTECARD_WORKLOAD_DATAGEN_H_
