#ifndef BYTECARD_WORKLOAD_QUERY_GEN_H_
#define BYTECARD_WORKLOAD_QUERY_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "minihouse/database.h"
#include "minihouse/query.h"
#include "workload/datagen.h"

namespace bytecard::workload {

// A join template: a connected set of tables plus the spanning-tree join
// edges over them (always acyclic, so the truth oracle applies).
struct JoinTemplate {
  std::vector<std::string> tables;
  std::vector<SchemaJoinEdge> edges;
};

// Enumerates the dataset's join templates: all connected subgraphs of the
// schema join graph with 1..max_tables tables, deterministic order, capped
// at max_templates. The caps reproduce Table 5's template counts (23 for
// JOB-Hybrid, 70 for STATS-Hybrid).
std::vector<JoinTemplate> EnumerateJoinTemplates(const std::string& dataset,
                                                 int max_tables,
                                                 int max_templates);

// One generated workload query.
struct WorkloadQuery {
  minihouse::BoundQuery query;
  std::string sql;
  bool aggregate = false;      // has GROUP BY
  int num_tables = 0;
  int num_group_keys = 0;
};

struct QueryGenOptions {
  int max_predicates_per_table = 2;
  double predicate_probability = 0.7;  // per table
  int min_group_keys = 1;
  int max_group_keys = 2;
  uint64_t seed = 2024;
};

// Generates one COUNT(*) cardinality-probe query on `tmpl`: random
// per-table conjunctions anchored at live data values.
Result<WorkloadQuery> GenerateCountQuery(const minihouse::Database& db,
                                         const JoinTemplate& tmpl,
                                         const QueryGenOptions& options,
                                         Rng* rng);

// Generates one executable aggregation query (the Hybrid extension):
// GROUP BY over low-cardinality columns with COUNT(*)/SUM/AVG aggregates
// and at least one selective filter so execution stays laptop-scale.
Result<WorkloadQuery> GenerateAggregateQuery(const minihouse::Database& db,
                                             const JoinTemplate& tmpl,
                                             const QueryGenOptions& options,
                                             Rng* rng);

// Random single-table NDV probe: COUNT(DISTINCT col) with a filter
// conjunction (the Table 1/2 "NDV Est." row's query shape).
struct NdvProbe {
  std::string table;
  int column = -1;
  minihouse::Conjunction filters;
};
Result<NdvProbe> GenerateNdvProbe(const minihouse::Database& db,
                                  const std::string& table_name,
                                  const QueryGenOptions& options, Rng* rng);

}  // namespace bytecard::workload

#endif  // BYTECARD_WORKLOAD_QUERY_GEN_H_
