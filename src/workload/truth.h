#ifndef BYTECARD_WORKLOAD_TRUTH_H_
#define BYTECARD_WORKLOAD_TRUTH_H_

#include <cstdint>

#include "common/status.h"
#include "minihouse/query.h"

namespace bytecard::workload {

// Exact COUNT(*) of a conjunctive join query whose join graph is acyclic
// (every workload template here is a spanning tree). Computed by bottom-up
// count message passing over the join tree — O(total rows), never
// materializes the join, so true cardinalities in the trillions (Table 5's
// upper range) are exact and cheap.
Result<int64_t> TrueCount(const minihouse::BoundQuery& query);

// Exact COUNT(DISTINCT column) of one table under a filter conjunction.
Result<int64_t> TrueColumnNdv(const minihouse::Table& table, int column,
                              const minihouse::Conjunction& filters);

// Exact number of GROUP BY groups (executes the query; only call on
// executable-scale queries).
Result<int64_t> TrueGroupCount(const minihouse::BoundQuery& query);

}  // namespace bytecard::workload

#endif  // BYTECARD_WORKLOAD_TRUTH_H_
