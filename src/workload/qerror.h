#ifndef BYTECARD_WORKLOAD_QERROR_H_
#define BYTECARD_WORKLOAD_QERROR_H_

#include <algorithm>
#include <cmath>
#include <vector>

namespace bytecard::workload {

// Q-Error: max(est/true, true/est) with both sides floored at 1 (the
// standard CardEst metric; its theoretical lower bound is 1).
inline double QError(double estimate, double truth) {
  const double e = std::max(estimate, 1.0);
  const double t = std::max(truth, 1.0);
  return std::max(e / t, t / e);
}

// Quantile of an unsorted sample: sorts a copy and linearly interpolates
// between the two ranks straddling q * (n - 1) — the "linear" method of R /
// NumPy, not nearest-rank. A quantile falling between observations returns a
// weighted blend of the neighbors, so e.g. the median of {1, 3} is 2.
inline double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t idx = static_cast<size_t>(pos);
  if (idx + 1 >= values.size()) return values.back();
  const double frac = pos - static_cast<double>(idx);
  return values[idx] * (1.0 - frac) + values[idx + 1] * frac;
}

// The summary statistics the paper's violin plots (Figure 7) communicate.
struct QuantileSummary {
  double min = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

inline QuantileSummary Summarize(const std::vector<double>& values) {
  QuantileSummary s;
  if (values.empty()) return s;
  s.min = Quantile(values, 0.0);
  s.p25 = Quantile(values, 0.25);
  s.p50 = Quantile(values, 0.5);
  s.p75 = Quantile(values, 0.75);
  s.p90 = Quantile(values, 0.9);
  s.p99 = Quantile(values, 0.99);
  s.max = Quantile(values, 1.0);
  return s;
}

}  // namespace bytecard::workload

#endif  // BYTECARD_WORKLOAD_QERROR_H_
