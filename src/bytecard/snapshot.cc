#include "bytecard/snapshot.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "cardest/route_class.h"
#include "common/logging.h"
#include "minihouse/predicate.h"
#include "stats/ndv_classic.h"

namespace bytecard {

namespace {

void CountFallback(SnapshotCounters* counters) {
  if (counters != nullptr) ++counters->fallback_estimates;
}

}  // namespace

// ---------------------------------------------------------------------------
// EstimatorSnapshot
// ---------------------------------------------------------------------------

const cardest::BnInferenceContext* EstimatorSnapshot::bn_context(
    const std::string& table) const {
  auto it = bn_contexts_.find(table);
  return it == bn_contexts_.end() ? nullptr : it->second;
}

const cardest::BayesNetModel* EstimatorSnapshot::bn_model(
    const std::string& table) const {
  auto it = bn_engines_.find(table);
  return it == bn_engines_.end() ? nullptr : &it->second->model();
}

bool EstimatorSnapshot::IsHealthy(const std::string& table) const {
  auto it = health_.find(table);
  return it == health_.end() ? true : it->second;
}

double EstimatorSnapshot::Estimate(const cardest::CardEstRequest& request,
                                   cardest::InferenceSession* session,
                                   SnapshotCounters* counters) const {
  // Adaptive routing: resolve the request's route class against the mined
  // table, then dispatch to the empirically-best family. With no live table
  // (bootstrap, empty mine, stale epoch) this is one bool test and the
  // general path below runs byte-identically to the pre-routing dispatch.
  if (routing_live_) {
    const std::string cls = cardest::RouteClassOf(request, session);
    const routing::RouteDecision* route = routing_->Find(cls);
    if (route != nullptr) {
      if (counters != nullptr) counters->route_classes_seen.insert(cls);
      if (route->family != routing::RouteFamily::kGeneral &&
          route->family != routing::RouteFamily::kCachedActual) {
        double routed = 0.0;
        if (EstimateWithFamily(route->family, request, session, counters,
                               &routed)) {
          if (counters != nullptr) ++counters->routed_estimates;
          return routed;
        }
        if (counters != nullptr) ++counters->route_fallbacks;
      }
      // kGeneral routes fall through by decision; kCachedActual routes are
      // answered by the feedback cache upstream (EstimationContext), so the
      // snapshot serves them generally on a cache miss. Neither counts as a
      // route fallback — the general path *is* their mined answer here.
    }
  }
  return EstimateGeneral(request, session, counters);
}

double EstimatorSnapshot::EstimateGeneral(
    const cardest::CardEstRequest& request, cardest::InferenceSession* session,
    SnapshotCounters* counters) const {
  using cardest::CardEstTarget;
  switch (request.target) {
    case CardEstTarget::kSelectivity:
      return SelectivityImpl(*request.table, *request.filters, session,
                             counters);
    case CardEstTarget::kJoinCount: {
      // All-tables requests resolve through the session's cached iota when
      // one is given — no per-call allocation on the planning hot path.
      std::vector<int> scratch;
      return JoinImpl(*request.query, request.ResolveTables(session, &scratch),
                      session, counters);
    }
    case CardEstTarget::kGroupNdv:
      return GroupNdvImpl(*request.query, session, counters);
    case CardEstTarget::kColumnNdv:
      return ColumnNdvImpl(*request.table, request.ndv_column,
                           *request.filters, session, counters);
    case CardEstTarget::kDisjunction:
      return DisjunctionImpl(*request.table, *request.disjuncts, session,
                             counters);
  }
  return 1.0;
}

double EstimatorSnapshot::EstimateSelectivity(
    const minihouse::Table& table, const minihouse::Conjunction& filters,
    SnapshotCounters* counters) const {
  return Estimate(cardest::CardEstRequest::Selectivity(table, filters),
                  nullptr, counters);
}

double EstimatorSnapshot::EstimateJoinCardinality(
    const minihouse::BoundQuery& query, const std::vector<int>& subset,
    SnapshotCounters* counters) const {
  return Estimate(cardest::CardEstRequest::JoinCount(query, subset), nullptr,
                  counters);
}

double EstimatorSnapshot::EstimateCount(const minihouse::BoundQuery& query,
                                        SnapshotCounters* counters) const {
  return Estimate(cardest::CardEstRequest::Count(query), nullptr, counters);
}

double EstimatorSnapshot::EstimateGroupNdv(const minihouse::BoundQuery& query,
                                           SnapshotCounters* counters) const {
  return Estimate(cardest::CardEstRequest::GroupNdv(query), nullptr,
                  counters);
}

double EstimatorSnapshot::EstimateColumnNdv(
    const minihouse::Table& table, int column,
    const minihouse::Conjunction& filters, SnapshotCounters* counters) const {
  return Estimate(cardest::CardEstRequest::ColumnNdv(table, column, filters),
                  nullptr, counters);
}

double EstimatorSnapshot::EstimateCountDisjunction(
    const minihouse::Table& table,
    const std::vector<minihouse::Conjunction>& disjuncts,
    SnapshotCounters* counters) const {
  return Estimate(cardest::CardEstRequest::Disjunction(table, disjuncts),
                  nullptr, counters);
}

bool EstimatorSnapshot::FamilySelectivity(routing::RouteFamily family,
                                          const minihouse::Table& table,
                                          const minihouse::Conjunction& filters,
                                          cardest::InferenceSession* session,
                                          double* out) const {
  // Family-prefixed memo keys keep routed probes out of the general "sel:"
  // memo: the same (table, filters) can be probed both ways in one query
  // (e.g. a routed scan next to a general join prefix) and each must replay
  // its own answer.
  std::string key;
  if (session != nullptr) {
    key = "rt" + std::to_string(static_cast<int>(family)) + ":" +
          cardest::TableKey(table, filters);
    double value = 0.0;
    bool was_fallback = false;
    if (session->LookupScalar(key, &value, &was_fallback)) {
      *out = value;
      return true;
    }
  }
  double value = 0.0;
  switch (family) {
    case routing::RouteFamily::kBn: {
      const cardest::BnInferenceContext* context = bn_context(table.name());
      if (context == nullptr || !IsHealthy(table.name())) return false;
      value = context->EstimateSelectivity(filters);
      break;
    }
    case routing::RouteFamily::kTraditional:
      if (fallback_ == nullptr) return false;
      value = fallback_->EstimateSelectivity(table, filters);
      break;
    case routing::RouteFamily::kSample: {
      if (samples_ == nullptr) return false;
      auto it = samples_->find(table.name());
      if (it == samples_->end() || it->second.num_rows() == 0) return false;
      value = static_cast<double>(it->second.CountMatches(filters)) /
              static_cast<double>(it->second.num_rows());
      break;
    }
    case routing::RouteFamily::kZoneMap:
      value = minihouse::ZoneMapSelectivityBound(table, filters);
      break;
    default:
      return false;
  }
  if (session != nullptr) session->StoreScalar(key, value, false);
  *out = value;
  return true;
}

bool EstimatorSnapshot::EstimateWithFamily(
    routing::RouteFamily family, const cardest::CardEstRequest& request,
    cardest::InferenceSession* session, SnapshotCounters* counters,
    double* out) const {
  using cardest::CardEstTarget;
  switch (request.target) {
    case CardEstTarget::kSelectivity:
      return FamilySelectivity(family, *request.table, *request.filters,
                               session, out);
    case CardEstTarget::kJoinCount: {
      std::vector<int> scratch;
      const std::vector<int>& subset = request.ResolveTables(session, &scratch);
      if (subset.size() == 1) {
        // Single-table "join" questions are selectivity questions; every
        // selectivity-capable family answers them scaled to row counts.
        const minihouse::BoundTableRef& ref = request.query->tables[subset[0]];
        double sel = 0.0;
        if (!FamilySelectivity(family, *ref.table, ref.filters, session,
                               &sel)) {
          return false;
        }
        *out = sel * static_cast<double>(ref.table->num_rows());
        return true;
      }
      switch (family) {
        case routing::RouteFamily::kFactorJoin: {
          if (fj_engine_ == nullptr) return false;
          FeatureVector features;
          features.query = request.query;
          features.table_subset = subset;
          features.session = session;
          Result<double> estimate = fj_engine_->Estimate(features);
          if (!estimate.ok()) return false;
          *out = estimate.value();
          return true;
        }
        case routing::RouteFamily::kTraditional:
          if (fallback_ == nullptr) return false;
          *out = fallback_->EstimateJoinCardinality(*request.query, subset);
          return true;
        default:
          return false;
      }
    }
    case CardEstTarget::kGroupNdv:
      if (family != routing::RouteFamily::kTraditional ||
          fallback_ == nullptr) {
        return false;
      }
      *out = fallback_->EstimateGroupNdv(*request.query);
      return true;
    case CardEstTarget::kColumnNdv:
    case CardEstTarget::kDisjunction:
      // No alternate family implements these targets; the general path's
      // RBX / inclusion-exclusion machinery is the only answer.
      return false;
  }
  (void)counters;
  return false;
}

double EstimatorSnapshot::SelectivityImpl(const minihouse::Table& table,
                                          const minihouse::Conjunction& filters,
                                          cardest::InferenceSession* session,
                                          SnapshotCounters* counters) const {
  // Health-aware selectivity, memoized under "sel:". Cached entries replay
  // their fallback accounting so SnapshotCounters stay identical with the
  // memo on or off.
  std::string key;
  if (session != nullptr) {
    key = "sel:" + cardest::TableKey(table, filters);
    double value = 0.0;
    bool was_fallback = false;
    if (session->LookupScalar(key, &value, &was_fallback)) {
      if (was_fallback) CountFallback(counters);
      return value;
    }
  }
  double value = 1.0;
  bool was_fallback = false;
  const cardest::BnInferenceContext* context = bn_context(table.name());
  if (context != nullptr && IsHealthy(table.name())) {
    value = context->EstimateSelectivity(filters);
  } else {
    was_fallback = true;
    CountFallback(counters);
    if (fallback_ != nullptr) {
      value = fallback_->EstimateSelectivity(table, filters);
    }
  }
  if (session != nullptr) session->StoreScalar(key, value, was_fallback);
  return value;
}

double EstimatorSnapshot::JoinImpl(const minihouse::BoundQuery& query,
                                   const std::vector<int>& subset,
                                   cardest::InferenceSession* session,
                                   SnapshotCounters* counters) const {
  if (subset.size() == 1) {
    const minihouse::BoundTableRef& ref = query.tables[subset[0]];
    return SelectivityImpl(*ref.table, ref.filters, session, counters) *
           static_cast<double>(ref.table->num_rows());
  }
  // Unhealthy single-table models poison join estimates too; fall back to
  // the traditional estimator for the whole join in that case.
  for (int t : subset) {
    if (!IsHealthy(query.tables[t].table->name())) {
      CountFallback(counters);
      if (fallback_ != nullptr) {
        return fallback_->EstimateJoinCardinality(query, subset);
      }
      break;
    }
  }
  if (fj_engine_ != nullptr) {
    FeatureVector features;
    features.query = &query;
    features.table_subset = subset;
    features.session = session;
    Result<double> estimate = fj_engine_->Estimate(features);
    if (estimate.ok()) return estimate.value();
  }
  CountFallback(counters);
  return fallback_ != nullptr
             ? fallback_->EstimateJoinCardinality(query, subset)
             : 1.0;
}

double EstimatorSnapshot::ColumnNdvImpl(
    const minihouse::Table& table, int column,
    const minihouse::Conjunction& filters, cardest::InferenceSession* session,
    SnapshotCounters* counters) const {
  // Unfiltered NDV: the maintained HyperLogLog sketch is exact-current for
  // append-only data (merged per ingest batch, no full-scan refresh), so it
  // outranks the sample+RBX path — samples go stale between refreshes.
  // Filtered NDV still needs the sample (a sketch cannot apply predicates).
  if (filters.empty() && ndv_sketches_ != nullptr) {
    const double sketch = ndv_sketches_->Estimate(table.name(), column);
    if (sketch >= 0.0) {
      return std::clamp(sketch, 1.0, static_cast<double>(table.num_rows()));
    }
  }
  if (samples_ == nullptr || rbx_engine_ == nullptr) {
    CountFallback(counters);
    return 1.0;
  }
  auto it = samples_->find(table.name());
  if (it == samples_->end() || it->second.num_rows() == 0) {
    CountFallback(counters);
    return 1.0;
  }
  const stats::TableSample& sample = it->second;

  // Featurization: filter the in-memory sample, then build the
  // sample-profile over the surviving key values.
  const std::vector<uint8_t> selection = sample.Matches(filters);
  std::vector<int64_t> values;
  for (int64_t i = 0; i < sample.num_rows(); ++i) {
    if (selection[i] != 0) values.push_back(sample.column(column)[i]);
  }
  if (values.empty()) return 1.0;

  // Population under the filters comes from the COUNT model.
  const double filtered_rows =
      SelectivityImpl(table, filters, session, counters) *
      static_cast<double>(table.num_rows());
  stats::SampleFrequencies frequencies = stats::ComputeFrequencies(
      values, std::max<int64_t>(1, static_cast<int64_t>(filtered_rows)));

  const FeatureVector features = rbx_engine_->FeaturizeSample(frequencies);
  Result<double> estimate = rbx_engine_->Estimate(features);
  if (!estimate.ok()) {
    CountFallback(counters);
    return std::max(1.0, stats::GeeEstimate(frequencies));
  }
  return estimate.value();
}

double EstimatorSnapshot::GroupNdvImpl(const minihouse::BoundQuery& query,
                                       cardest::InferenceSession* session,
                                       SnapshotCounters* counters) const {
  if (query.group_by.empty()) return 1.0;
  double ndv = 1.0;
  for (const minihouse::GroupKeyRef& g : query.group_by) {
    const minihouse::BoundTableRef& ref = query.tables[g.table];
    ndv *= std::max(1.0, ColumnNdvImpl(*ref.table, g.column, ref.filters,
                                       session, counters));
  }
  std::vector<int> scratch;
  const double rows =
      JoinImpl(query,
               cardest::CardEstRequest::Count(query).ResolveTables(session,
                                                                   &scratch),
               session, counters);
  return std::max(1.0, std::min(ndv, rows));
}

double EstimatorSnapshot::DisjunctionImpl(
    const minihouse::Table& table,
    const std::vector<minihouse::Conjunction>& disjuncts,
    cardest::InferenceSession* session, SnapshotCounters* counters) const {
  // Inclusion-exclusion over all non-empty disjunct subsets. |D| is small in
  // practice (OR lists in analytical filters); cap keeps this bounded.
  const int n = static_cast<int>(disjuncts.size());
  if (n == 0) return 0.0;
  BC_CHECK(n <= 16) << "inclusion-exclusion over too many disjuncts";

  double selectivity = 0.0;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    minihouse::Conjunction merged;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        merged.insert(merged.end(), disjuncts[i].begin(),
                      disjuncts[i].end());
      }
    }
    const double term = SelectivityImpl(table, merged, session, counters);
    selectivity += (__builtin_popcount(mask) % 2 == 1) ? term : -term;
  }
  selectivity = std::clamp(selectivity, 0.0, 1.0);
  return selectivity * static_cast<double>(table.num_rows());
}

// ---------------------------------------------------------------------------
// SnapshotBuilder
// ---------------------------------------------------------------------------

SnapshotBuilder::SnapshotBuilder(
    std::shared_ptr<const EstimatorSnapshot> base, ModelValidator* validator)
    : base_(std::move(base)), validator_(validator) {}

Status SnapshotBuilder::LoadBn(const std::string& table,
                               const std::string& bytes) {
  auto engine = std::make_shared<BnCountEngine>();
  BC_RETURN_IF_ERROR(engine->LoadModel(bytes));
  if (validator_ != nullptr) {
    BC_RETURN_IF_ERROR(validator_->Admit("bn/" + table, *engine, nullptr));
  }
  BC_RETURN_IF_ERROR(engine->InitContext());
  new_bns_[table] = std::move(engine);
  return Status::Ok();
}

Status SnapshotBuilder::AdoptBn(const std::string& table,
                                cardest::BayesNetModel model) {
  auto engine = std::make_shared<BnCountEngine>();
  engine->AdoptModel(std::move(model));
  if (validator_ != nullptr) {
    BC_RETURN_IF_ERROR(validator_->Admit("bn/" + table, *engine, nullptr));
  }
  BC_RETURN_IF_ERROR(engine->InitContext());
  new_bns_[table] = std::move(engine);
  return Status::Ok();
}

Status SnapshotBuilder::LoadFactorJoin(const std::string& bytes) {
  // Probe engine: deserialize + structural validation now, so a bad artifact
  // is rejected before it can poison Finish. The serving engine is built in
  // Finish against the successor's BN registry.
  auto probe = std::make_unique<FactorJoinEngine>(nullptr);
  BC_RETURN_IF_ERROR(probe->LoadModel(bytes));
  BC_RETURN_IF_ERROR(probe->Validate());
  fj_probe_ = std::move(probe);
  new_fj_bytes_ = bytes;
  has_new_fj_ = true;
  return Status::Ok();
}

Status SnapshotBuilder::LoadRbx(const std::string& bytes) {
  auto engine = std::make_shared<RbxNdvEngine>();
  BC_RETURN_IF_ERROR(engine->LoadModel(bytes));
  if (validator_ != nullptr) {
    BC_RETURN_IF_ERROR(validator_->Admit("rbx/global", *engine, nullptr));
  }
  BC_RETURN_IF_ERROR(engine->InitContext());
  new_rbx_ = std::move(engine);
  return Status::Ok();
}

void SnapshotBuilder::SetHealth(const std::string& table, bool healthy) {
  health_overrides_[table] = healthy;
}

void SnapshotBuilder::SetSamples(
    std::shared_ptr<const std::map<std::string, stats::TableSample>>
        samples) {
  samples_ = std::move(samples);
  has_samples_ = true;
}

void SnapshotBuilder::SetFallback(
    std::shared_ptr<stats::SketchEstimator> fallback) {
  fallback_ = std::move(fallback);
  has_fallback_ = true;
}

void SnapshotBuilder::SetIngestEpoch(uint64_t epoch) {
  ingest_epoch_ = epoch;
  has_ingest_epoch_ = true;
}

void SnapshotBuilder::SetNdvSketches(
    std::shared_ptr<const cardest::NdvSketchCatalog> sketches) {
  ndv_sketches_ = std::move(sketches);
  has_ndv_sketches_ = true;
}

Status SnapshotBuilder::SetRoutingTable(
    std::shared_ptr<const routing::RoutingTable> table) {
  if (table != nullptr) BC_RETURN_IF_ERROR(table->Validate());
  routing_ = std::move(table);
  has_routing_ = true;
  return Status::Ok();
}

const cardest::BnInferenceContext* SnapshotBuilder::bn_context(
    const std::string& table) const {
  auto it = new_bns_.find(table);
  if (it != new_bns_.end()) return it->second->context();
  return base_ == nullptr ? nullptr : base_->bn_context(table);
}

const cardest::FactorJoinModel* SnapshotBuilder::fj_model() const {
  if (fj_probe_ != nullptr) return &fj_probe_->model();
  if (base_ != nullptr && base_->fj_engine() != nullptr) {
    return &base_->fj_engine()->model();
  }
  return nullptr;
}

std::vector<std::string> SnapshotBuilder::bn_tables() const {
  std::map<std::string, bool> names;
  if (base_ != nullptr) {
    for (const auto& [name, engine] : base_->bn_engines_) {
      (void)engine;
      names[name] = true;
    }
  }
  for (const auto& [name, engine] : new_bns_) {
    (void)engine;
    names[name] = true;
  }
  std::vector<std::string> out;
  out.reserve(names.size());
  for (const auto& [name, unused] : names) {
    (void)unused;
    out.push_back(name);
  }
  return out;
}

Result<std::shared_ptr<const EstimatorSnapshot>> SnapshotBuilder::Finish() {
  std::shared_ptr<EstimatorSnapshot> snapshot(new EstimatorSnapshot());
  snapshot->version_ = base_ == nullptr ? 1 : base_->version_ + 1;

  // BN engines: share the base's, override with replacements.
  if (base_ != nullptr) snapshot->bn_engines_ = base_->bn_engines_;
  for (auto& [name, engine] : new_bns_) {
    snapshot->bn_engines_[name] = std::move(engine);
  }
  new_bns_.clear();
  for (const auto& [name, engine] : snapshot->bn_engines_) {
    if (engine->context() == nullptr) {
      return Status::Internal("BN engine '" + name +
                              "' entered a snapshot without a context");
    }
    snapshot->bn_contexts_[name] = engine->context();
  }

  // FactorJoin: even when the model is unchanged, the engine is rebuilt so
  // its estimator binds to *this* snapshot's BN registry (its InitContext
  // re-validates against the exact contexts it will compose).
  snapshot->fj_bytes_ =
      has_new_fj_ ? std::move(new_fj_bytes_)
                  : (base_ != nullptr ? base_->fj_bytes_ : std::string());
  if (!snapshot->fj_bytes_.empty()) {
    auto fj = std::make_unique<FactorJoinEngine>(&snapshot->bn_contexts_);
    BC_RETURN_IF_ERROR(fj->LoadModel(snapshot->fj_bytes_));
    if (validator_ != nullptr) {
      BC_RETURN_IF_ERROR(
          validator_->Admit("factorjoin/global", *fj, nullptr));
    }
    BC_RETURN_IF_ERROR(fj->InitContext());
    snapshot->fj_engine_ = std::move(fj);
  }

  snapshot->rbx_engine_ =
      new_rbx_ != nullptr
          ? std::shared_ptr<const RbxNdvEngine>(std::move(new_rbx_))
          : (base_ != nullptr ? base_->rbx_engine_ : nullptr);

  if (base_ != nullptr) snapshot->health_ = base_->health_;
  for (const auto& [name, healthy] : health_overrides_) {
    snapshot->health_[name] = healthy;
  }

  snapshot->samples_ =
      has_samples_ ? std::move(samples_)
                   : (base_ != nullptr ? base_->samples_ : nullptr);
  snapshot->fallback_ =
      has_fallback_ ? std::move(fallback_)
                    : (base_ != nullptr ? base_->fallback_ : nullptr);
  snapshot->ingest_epoch_ =
      has_ingest_epoch_ ? ingest_epoch_
                        : (base_ != nullptr ? base_->ingest_epoch_ : 0);
  snapshot->ndv_sketches_ =
      has_ndv_sketches_ ? std::move(ndv_sketches_)
                        : (base_ != nullptr ? base_->ndv_sketches_ : nullptr);
  snapshot->routing_ =
      has_routing_ ? std::move(routing_)
                   : (base_ != nullptr ? base_->routing_ : nullptr);
  // Routing serves only while the mined evidence matches the data the models
  // absorbed: a later ingest epoch voids every route until a re-mine.
  snapshot->routing_live_ = snapshot->routing_ != nullptr &&
                            !snapshot->routing_->empty() &&
                            snapshot->routing_->mined_epoch() ==
                                snapshot->ingest_epoch_;

  return std::shared_ptr<const EstimatorSnapshot>(std::move(snapshot));
}

// ---------------------------------------------------------------------------
// SnapshotEstimator
// ---------------------------------------------------------------------------

double SnapshotEstimator::Estimate(const cardest::CardEstRequest& request,
                                   cardest::InferenceSession* session) {
  if (snapshot_ == nullptr) {
    // No serving state: neutral answers (a disjunction "count" degrades to
    // 0 rows, everything else to the multiplicative identity).
    return request.target == cardest::CardEstTarget::kDisjunction ? 0.0 : 1.0;
  }
  return snapshot_->Estimate(request, session, &counters_);
}

double SnapshotEstimator::EstimateSelectivity(
    const minihouse::Table& table, const minihouse::Conjunction& filters) {
  return Estimate(cardest::CardEstRequest::Selectivity(table, filters),
                  nullptr);
}

double SnapshotEstimator::EstimateJoinCardinality(
    const minihouse::BoundQuery& query, const std::vector<int>& subset) {
  return Estimate(cardest::CardEstRequest::JoinCount(query, subset), nullptr);
}

double SnapshotEstimator::EstimateGroupNdv(
    const minihouse::BoundQuery& query) {
  return Estimate(cardest::CardEstRequest::GroupNdv(query), nullptr);
}

}  // namespace bytecard
