#include "bytecard/inference_engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cardest/ndv/freq_profile.h"
#include "common/logging.h"
#include "sql/analyzer.h"

namespace bytecard {

Result<FeatureVector> CardEstInferenceEngine::FeaturizeSqlQuery(
    const std::string& sql, const minihouse::Database& db) const {
  // Default path: parse + bind, then reuse the AST featurizer. Concrete
  // engines may override with a direct SQL featurization for quick PoC
  // integrations of research models. The bound AST is parked on the
  // FeatureVector so the featurizer's borrowed views survive this scope.
  auto ast = std::make_shared<minihouse::BoundQuery>();
  BC_ASSIGN_OR_RETURN(*ast, sql::AnalyzeSql(sql, db));
  BC_ASSIGN_OR_RETURN(FeatureVector features, FeaturizeAst(*ast));
  features.owned_query = std::move(ast);
  return features;
}

// ---------------------------------------------------------------------------
// BnCountEngine
// ---------------------------------------------------------------------------

Status BnCountEngine::LoadModel(const std::string& artifact_bytes) {
  BufferReader reader(artifact_bytes);
  BC_ASSIGN_OR_RETURN(model_, cardest::BayesNetModel::Deserialize(&reader));
  context_.reset();  // stale context must not outlive the old model
  return Status::Ok();
}

void BnCountEngine::AdoptModel(cardest::BayesNetModel model) {
  model_ = std::move(model);
  context_.reset();  // stale context must not outlive the old model
}

Status BnCountEngine::Validate() const { return model_.ValidateStructure(); }

Status BnCountEngine::InitContext() {
  BC_RETURN_IF_ERROR(Validate());
  context_ = std::make_unique<cardest::BnInferenceContext>(&model_);
  return Status::Ok();
}

Result<FeatureVector> BnCountEngine::FeaturizeAst(
    const minihouse::BoundQuery& ast) const {
  FeatureVector features;
  // Borrow the conjunction of the table this model was trained for (the
  // FeatureVector lifetime contract ties it to `ast`).
  for (const minihouse::BoundTableRef& ref : ast.tables) {
    if (ref.table->name() == model_.table_name()) {
      features.conjunction = &ref.filters;
      return features;
    }
  }
  return Status::NotFound("query does not reference table '" +
                          model_.table_name() + "'");
}

Result<double> BnCountEngine::Estimate(const FeatureVector& features) const {
  if (context_ == nullptr) {
    return Status::Internal("BnCountEngine: InitContext not called");
  }
  // A null view means "no evidence": the unconditioned COUNT.
  static const minihouse::Conjunction kNoEvidence;
  return context_->EstimateCount(
      features.conjunction != nullptr ? *features.conjunction : kNoEvidence);
}

int64_t BnCountEngine::ModelSizeBytes() const {
  BufferWriter writer;
  model_.Serialize(&writer);
  return static_cast<int64_t>(writer.buffer().size());
}

// ---------------------------------------------------------------------------
// FactorJoinEngine
// ---------------------------------------------------------------------------

Status FactorJoinEngine::LoadModel(const std::string& artifact_bytes) {
  BufferReader reader(artifact_bytes);
  BC_ASSIGN_OR_RETURN(model_, cardest::FactorJoinModel::Deserialize(&reader));
  estimator_.reset();
  return Status::Ok();
}

Status FactorJoinEngine::Validate() const {
  for (const auto& group : model_.groups()) {
    if (group.members.empty() || group.buckets.num_buckets() == 0) {
      return Status::InvalidModel("FactorJoin group without members/buckets");
    }
  }
  return Status::Ok();
}

Status FactorJoinEngine::InitContext() {
  BC_RETURN_IF_ERROR(Validate());
  if (bn_contexts_ == nullptr) {
    return Status::Internal("FactorJoinEngine: BN context registry missing");
  }
  estimator_ = std::make_unique<cardest::FactorJoinEstimator>(&model_,
                                                              bn_contexts_);
  return Status::Ok();
}

Result<FeatureVector> FactorJoinEngine::FeaturizeAst(
    const minihouse::BoundQuery& ast) const {
  FeatureVector features;
  features.query = &ast;
  features.table_subset.resize(ast.num_tables());
  std::iota(features.table_subset.begin(), features.table_subset.end(), 0);
  return features;
}

Result<double> FactorJoinEngine::Estimate(
    const FeatureVector& features) const {
  if (estimator_ == nullptr) {
    return Status::Internal("FactorJoinEngine: InitContext not called");
  }
  if (features.query == nullptr) {
    return Status::InvalidArgument(
        "FactorJoin features carry no bound query");
  }
  return estimator_->EstimateJoinCount(*features.query, features.table_subset,
                                       features.session);
}

int64_t FactorJoinEngine::ModelSizeBytes() const {
  BufferWriter writer;
  model_.Serialize(&writer);
  return static_cast<int64_t>(writer.buffer().size());
}

// ---------------------------------------------------------------------------
// RbxNdvEngine
// ---------------------------------------------------------------------------

Status RbxNdvEngine::LoadModel(const std::string& artifact_bytes) {
  BufferReader reader(artifact_bytes);
  BC_ASSIGN_OR_RETURN(model_, cardest::RbxModel::Deserialize(&reader));
  context_ready_ = false;
  return Status::Ok();
}

Status RbxNdvEngine::Validate() const { return model_.Validate(); }

Status RbxNdvEngine::InitContext() {
  BC_RETURN_IF_ERROR(Validate());
  context_ready_ = true;
  return Status::Ok();
}

Result<FeatureVector> RbxNdvEngine::FeaturizeAst(
    const minihouse::BoundQuery& ast) const {
  // NDV featurization needs a data sample, not just the AST; the facade
  // builds the sample-profile via FeaturizeSample. AST-only featurization is
  // therefore not meaningful for RBX.
  (void)ast;
  return Status::Unimplemented(
      "RBX featurizes sample profiles, not bare ASTs; use FeaturizeSample");
}

FeatureVector RbxNdvEngine::FeaturizeSample(
    const stats::SampleFrequencies& frequencies) const {
  FeatureVector features;
  features.dense = cardest::BuildFrequencyProfile(frequencies);
  // Stash (d, N) at the end so Estimate can clamp; keep layout stable.
  features.dense.push_back(
      static_cast<double>(frequencies.sample_distinct()));
  features.dense.push_back(
      static_cast<double>(frequencies.population_size));
  return features;
}

Result<double> RbxNdvEngine::Estimate(const FeatureVector& features) const {
  if (!context_ready_) {
    return Status::Internal("RbxNdvEngine: InitContext not called");
  }
  if (features.dense.size() !=
      static_cast<size_t>(cardest::kFrequencyProfileDim) + 2) {
    return Status::InvalidArgument("RBX feature vector has wrong dimension");
  }
  // Rebuild the clamping stats from the stashed suffix.
  stats::SampleFrequencies frequencies;
  const double d = features.dense[cardest::kFrequencyProfileDim];
  const double population =
      features.dense[cardest::kFrequencyProfileDim + 1];
  frequencies.population_size = static_cast<int64_t>(population);
  // Reconstructing exact frequencies isn't needed: EstimateNdv only reads
  // the profile, d and N. Feed it a minimal equivalent.
  frequencies.sample_size = static_cast<int64_t>(d);
  frequencies.freq = {static_cast<int64_t>(d)};

  const double log_ratio_input_d = std::max(1.0, d);
  // Use the network directly on the true profile prefix.
  std::vector<double> profile(
      features.dense.begin(),
      features.dense.begin() + cardest::kFrequencyProfileDim);
  const double log_ratio = model_.network().Predict(profile);
  const double estimate =
      log_ratio_input_d * std::exp(std::max(0.0, log_ratio));
  return std::clamp(estimate, log_ratio_input_d,
                    std::max(log_ratio_input_d, population));
}

int64_t RbxNdvEngine::ModelSizeBytes() const {
  BufferWriter writer;
  model_.Serialize(&writer);
  return static_cast<int64_t>(writer.buffer().size());
}

}  // namespace bytecard
