#ifndef BYTECARD_BYTECARD_INFERENCE_ENGINE_H_
#define BYTECARD_BYTECARD_INFERENCE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cardest/bayes/bayes_net.h"
#include "cardest/factorjoin/factor_join.h"
#include "cardest/ndv/rbx.h"
#include "cardest/request.h"
#include "common/status.h"
#include "minihouse/database.h"
#include "minihouse/query.h"

namespace bytecard {

// The feature container that flows from the featurization interfaces into
// Estimate (paper Fig. 4). Different model families consume different parts:
// NN models (RBX) use the dense vector; probabilistic models (BN,
// FactorJoin) use the structured evidence.
//
// The structured evidence is *borrowed*, not copied: `conjunction` and
// `query` point into the caller's bound AST (featurization used to deep-copy
// a whole BoundQuery per probe, which dominated join-order-search cost). A
// FeatureVector is therefore call-scoped — it must not outlive the AST it
// was featurized from, and engines treat null views as "no evidence".
struct FeatureVector {
  std::vector<double> dense;                            // NN-style features
  const minihouse::Conjunction* conjunction = nullptr;  // single-table evidence
  const minihouse::BoundQuery* query = nullptr;         // join-shaped evidence
  std::vector<int> table_subset;                        // tables covered
  // Optional per-query inference session (owned by the calling query
  // thread); engines that probe repeatedly memoize through it.
  cardest::InferenceSession* session = nullptr;
  // The rapid-PoC SQL path has no caller-owned AST: FeaturizeSqlQuery parks
  // its bound query here so the views above stay valid. Empty on the
  // production AST path.
  std::shared_ptr<const minihouse::BoundQuery> owned_query;
};

// The paper's Inference Engine abstraction (§4.2, Fig. 4): a uniform
// lifecycle for every learned CardEst model inside the warehouse kernel.
//
//   LoadModel -> Validate -> InitContext -> { Featurize* -> Estimate }*
//
// LoadModel deserializes an artifact (invoked by the Model Loader);
// Validate is the Model Validator's hook; InitContext freezes the immutable
// structures inference needs, after which Estimate is const, lock-free, and
// safe to invoke concurrently from every query thread.
class CardEstInferenceEngine {
 public:
  virtual ~CardEstInferenceEngine() = default;

  virtual std::string name() const = 0;

  // Deserializes a model artifact from bytes (as read from cloud storage).
  virtual Status LoadModel(const std::string& artifact_bytes) = 0;

  // Model legitimacy checks (health detector). Called before InitContext.
  virtual Status Validate() const = 0;

  // Builds the immutable inference context. Must be called after a
  // successful LoadModel/Validate and before Estimate.
  virtual Status InitContext() = 0;

  // Featurization of raw SQL (the rapid-PoC path for research estimators).
  virtual Result<FeatureVector> FeaturizeSqlQuery(
      const std::string& sql, const minihouse::Database& db) const;

  // Featurization of the analyzer's bound AST (the production path; richer
  // and cheaper since parsing/binding already happened).
  virtual Result<FeatureVector> FeaturizeAst(
      const minihouse::BoundQuery& ast) const = 0;

  // The actual inference. Thread-safe after InitContext.
  virtual Result<double> Estimate(const FeatureVector& features) const = 0;

  // Serialized model size, for the size checker and Tables 3/6.
  virtual int64_t ModelSizeBytes() const = 0;
};

// --- Concrete engines -------------------------------------------------------

// Single-table COUNT engine wrapping a tree BN. Estimate returns the
// estimated row count of the (single-table) feature conjunction.
class BnCountEngine : public CardEstInferenceEngine {
 public:
  BnCountEngine() = default;

  std::string name() const override { return "bn_count"; }
  Status LoadModel(const std::string& artifact_bytes) override;
  // In-memory twin of LoadModel for the incremental-maintenance path: adopts
  // an already-materialized model without the serialize -> deserialize round
  // trip. Validation and context building are unchanged.
  void AdoptModel(cardest::BayesNetModel model);
  Status Validate() const override;
  Status InitContext() override;
  Result<FeatureVector> FeaturizeAst(
      const minihouse::BoundQuery& ast) const override;
  Result<double> Estimate(const FeatureVector& features) const override;
  int64_t ModelSizeBytes() const override;

  const cardest::BayesNetModel& model() const { return model_; }
  // Valid after InitContext.
  const cardest::BnInferenceContext* context() const {
    return context_.get();
  }

 private:
  cardest::BayesNetModel model_;
  std::unique_ptr<cardest::BnInferenceContext> context_;
};

// Multi-table COUNT engine wrapping FactorJoin. Needs the BN contexts of the
// tables it composes; `bn_contexts` must outlive the engine and be fully
// initialized before InitContext is called (the paper's requirement that
// FactorJoin's InitContext invoke each single-table model's InitContext).
class FactorJoinEngine : public CardEstInferenceEngine {
 public:
  explicit FactorJoinEngine(
      const std::map<std::string, const cardest::BnInferenceContext*>*
          bn_contexts)
      : bn_contexts_(bn_contexts) {}

  std::string name() const override { return "factorjoin"; }
  Status LoadModel(const std::string& artifact_bytes) override;
  Status Validate() const override;
  Status InitContext() override;
  Result<FeatureVector> FeaturizeAst(
      const minihouse::BoundQuery& ast) const override;
  Result<double> Estimate(const FeatureVector& features) const override;
  int64_t ModelSizeBytes() const override;

  const cardest::FactorJoinModel& model() const { return model_; }

 private:
  cardest::FactorJoinModel model_;
  std::unique_ptr<cardest::FactorJoinEstimator> estimator_;
  const std::map<std::string, const cardest::BnInferenceContext*>*
      bn_contexts_;
};

// COUNT-DISTINCT engine wrapping RBX. The dense feature vector is the
// frequency profile; Estimate returns the NDV estimate.
class RbxNdvEngine : public CardEstInferenceEngine {
 public:
  RbxNdvEngine() = default;

  std::string name() const override { return "rbx_ndv"; }
  Status LoadModel(const std::string& artifact_bytes) override;
  Status Validate() const override;
  Status InitContext() override;
  Result<FeatureVector> FeaturizeAst(
      const minihouse::BoundQuery& ast) const override;
  Result<double> Estimate(const FeatureVector& features) const override;
  int64_t ModelSizeBytes() const override;

  // RBX featurization from sample statistics (the sample-profile path the
  // aggregation-sizing scenario uses, §5.2.1).
  FeatureVector FeaturizeSample(
      const stats::SampleFrequencies& frequencies) const;

  const cardest::RbxModel& model() const { return model_; }

 private:
  cardest::RbxModel model_;
  bool context_ready_ = false;
};

}  // namespace bytecard

#endif  // BYTECARD_BYTECARD_INFERENCE_ENGINE_H_
