#ifndef BYTECARD_BYTECARD_SNAPSHOT_H_
#define BYTECARD_BYTECARD_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bytecard/inference_engine.h"
#include "bytecard/model_validator.h"
#include "bytecard/routing/routing_table.h"
#include "cardest/ndv/hll.h"
#include "cardest/request.h"
#include "minihouse/optimizer.h"
#include "stats/sampler.h"
#include "stats/traditional_estimator.h"

namespace bytecard {

// Per-query counters the snapshot's estimation methods fill in. One instance
// per pinned view (single-threaded); pass nullptr when not accounting.
struct SnapshotCounters {
  int64_t fallback_estimates = 0;
  // Adaptive-routing accounting (all zero while no routing table is live,
  // which is also how the byte-identity invariant is asserted in tests).
  int64_t routed_estimates = 0;   // answered by a mined non-general family
  int64_t route_fallbacks = 0;    // mined family inapplicable -> general path
  std::set<std::string> route_classes_seen;  // distinct classes with a route
};

// One immutable, atomically-swappable unit of serving state: the per-table
// BN COUNT engines and their inference-context registry, the FactorJoin
// engine (bound to *this snapshot's* registry), the RBX NDV engine, the
// per-table RBX featurization samples, the model health flags, and the
// traditional fallback estimator.
//
// After SnapshotBuilder::Finish, every member is frozen: all estimation
// entry points are const, lock-free, and safe to invoke concurrently from
// every query thread (the paper's §4.2 Inference Engine contract, extended
// from per-engine to the whole serving unit). Model lifecycle events
// (loader refresh, retrain pickup, monitor demotion) never mutate a live
// snapshot — they build a successor off-thread and publish it; queries
// pinning the old snapshot drain naturally.
class EstimatorSnapshot {
 public:
  // Monotonic publication version (1 = bootstrap).
  uint64_t version() const { return version_; }

  // Ingest epoch (the DataIngestor batch offset) this snapshot's models have
  // absorbed, stamped by the incremental maintainer. 0 = trained state with
  // no delta updates; successors inherit their base's epoch unless the
  // builder overrides it, so a full-retrain publish after delta publishes
  // keeps the high-water mark.
  uint64_t ingest_epoch() const { return ingest_epoch_; }

  // --- Estimation (const, lock-free) ---------------------------------------
  // The one estimation entry point: every target kind dispatches through
  // here. `session` (optional) is a per-query memo for repeated BN probes
  // and FactorJoin bucket distributions; it belongs to the calling query
  // thread and must not be shared across threads or outlive the pinned
  // snapshot it first served. Estimates are byte-identical with and without
  // a session — the memo replays cached values (including their fallback
  // accounting), never recomputes differently.
  double Estimate(const cardest::CardEstRequest& request,
                  cardest::InferenceSession* session,
                  SnapshotCounters* counters = nullptr) const;

  // Typed convenience wrappers; each builds a CardEstRequest and delegates
  // to Estimate with no session.
  double EstimateSelectivity(const minihouse::Table& table,
                             const minihouse::Conjunction& filters,
                             SnapshotCounters* counters = nullptr) const;
  double EstimateJoinCardinality(const minihouse::BoundQuery& query,
                                 const std::vector<int>& subset,
                                 SnapshotCounters* counters = nullptr) const;
  double EstimateGroupNdv(const minihouse::BoundQuery& query,
                          SnapshotCounters* counters = nullptr) const;
  double EstimateCount(const minihouse::BoundQuery& query,
                       SnapshotCounters* counters = nullptr) const;
  double EstimateColumnNdv(const minihouse::Table& table, int column,
                           const minihouse::Conjunction& filters,
                           SnapshotCounters* counters = nullptr) const;
  // OR-query estimation (paper §5.1.2) via inclusion-exclusion; the whole
  // disjunction is answered by this one snapshot.
  double EstimateCountDisjunction(
      const minihouse::Table& table,
      const std::vector<minihouse::Conjunction>& disjuncts,
      SnapshotCounters* counters = nullptr) const;

  // --- Adaptive routing -----------------------------------------------------
  // Answers `request` with one specific estimator family, bypassing the
  // tiered general dispatch. Returns false (and leaves *out untouched) when
  // the family cannot answer this request shape on this snapshot — missing
  // engine, no sample, unhealthy model, unsupported target. Estimate() calls
  // this when a live routing table names a family for the request's class;
  // the RouteMiner calls it directly to score candidate families on the
  // replayed feedback trace. Routed probes memoize under family-prefixed
  // session keys ("rt<family>:") so the general path's "sel:" memo is never
  // polluted — the byte-identity invariant survives mixed routed/general
  // probes within one query.
  bool EstimateWithFamily(routing::RouteFamily family,
                          const cardest::CardEstRequest& request,
                          cardest::InferenceSession* session,
                          SnapshotCounters* counters, double* out) const;

  // The pre-routing tiered dispatch (BN -> FactorJoin -> traditional),
  // byte-identical to the historical Estimate() body. Estimate() lands here
  // for unrouted classes; the RouteMiner calls it directly so the general
  // baseline is scored routing-free even when re-mining a snapshot whose
  // routing table is already live.
  double EstimateGeneral(const cardest::CardEstRequest& request,
                         cardest::InferenceSession* session,
                         SnapshotCounters* counters) const;

  // The mined routing table (null until a RouteMiner publish).
  const routing::RoutingTable* routing_table() const { return routing_.get(); }
  std::shared_ptr<const routing::RoutingTable> routing_table_shared() const {
    return routing_;
  }
  // True when the routing table is non-empty AND its mined epoch matches
  // this snapshot's ingest epoch. A delta publish that advances the epoch
  // silently disables routing (the trace evidence predates the new data)
  // until routes are re-mined.
  bool routing_live() const { return routing_live_; }

  // --- Introspection --------------------------------------------------------
  const cardest::BnInferenceContext* bn_context(
      const std::string& table) const;
  // The live BN model for `table` (null when absent). The incremental
  // maintainer unfolds this into its copy-on-write count page.
  const cardest::BayesNetModel* bn_model(const std::string& table) const;
  bool IsHealthy(const std::string& table) const;
  // Null when the snapshot carries no model of that kind.
  const FactorJoinEngine* fj_engine() const { return fj_engine_.get(); }
  const RbxNdvEngine* rbx_engine() const { return rbx_engine_.get(); }
  // The NDV sketch catalog (null until incremental maintenance publishes
  // one). Immutable per snapshot; ColumnNdvImpl consults it for
  // unfiltered NDV questions.
  const cardest::NdvSketchCatalog* ndv_sketches() const {
    return ndv_sketches_.get();
  }

 private:
  friend class SnapshotBuilder;
  EstimatorSnapshot() = default;

  // Single-table selectivity through one specific family (shared by the
  // kSelectivity and single-table kJoinCount routed paths).
  bool FamilySelectivity(routing::RouteFamily family,
                         const minihouse::Table& table,
                         const minihouse::Conjunction& filters,
                         cardest::InferenceSession* session,
                         double* out) const;

  // Per-target implementations behind the Estimate dispatch; all thread the
  // session down to the engines that can exploit it.
  double SelectivityImpl(const minihouse::Table& table,
                         const minihouse::Conjunction& filters,
                         cardest::InferenceSession* session,
                         SnapshotCounters* counters) const;
  double JoinImpl(const minihouse::BoundQuery& query,
                  const std::vector<int>& subset,
                  cardest::InferenceSession* session,
                  SnapshotCounters* counters) const;
  double ColumnNdvImpl(const minihouse::Table& table, int column,
                       const minihouse::Conjunction& filters,
                       cardest::InferenceSession* session,
                       SnapshotCounters* counters) const;
  double GroupNdvImpl(const minihouse::BoundQuery& query,
                      cardest::InferenceSession* session,
                      SnapshotCounters* counters) const;
  double DisjunctionImpl(const minihouse::Table& table,
                         const std::vector<minihouse::Conjunction>& disjuncts,
                         cardest::InferenceSession* session,
                         SnapshotCounters* counters) const;

  uint64_t version_ = 0;
  uint64_t ingest_epoch_ = 0;
  // Engines are shared with predecessor/successor snapshots when unchanged;
  // the registry below points into them, so their addresses are stable for
  // this snapshot's lifetime.
  std::map<std::string, std::shared_ptr<const BnCountEngine>> bn_engines_;
  std::map<std::string, const cardest::BnInferenceContext*> bn_contexts_;
  // Serialized FactorJoin model, kept so successors can rebind a fresh
  // engine to their own BN registry without re-reading the artifact store.
  std::string fj_bytes_;
  std::unique_ptr<FactorJoinEngine> fj_engine_;
  std::shared_ptr<const RbxNdvEngine> rbx_engine_;
  // Monitor verdicts baked in at publish time; absent tables default to
  // healthy (mirrors ModelMonitor::IsHealthy).
  std::map<std::string, bool> health_;
  // Per-table samples for RBX featurization (§5.2.1); shared, immutable.
  std::shared_ptr<const std::map<std::string, stats::TableSample>> samples_;
  // Traditional fallback for unhealthy/missing models. SketchEstimator is
  // stateless over an immutable statistics store, so sharing it across
  // snapshots and query threads is safe.
  std::shared_ptr<stats::SketchEstimator> fallback_;
  // HyperLogLog NDV catalog from the incremental maintainer; shared with
  // neighbors when unchanged, replaced wholesale on merge.
  std::shared_ptr<const cardest::NdvSketchCatalog> ndv_sketches_;
  // Mined routing table (null until the RouteMiner publishes one); shared
  // with neighbor snapshots when unchanged. routing_live_ is derived in
  // Finish so the hot path pays one bool test when no routes apply.
  std::shared_ptr<const routing::RoutingTable> routing_;
  bool routing_live_ = false;
};

// Builds an EstimatorSnapshot, either from scratch (bootstrap) or as the
// successor of a live snapshot — unchanged engines are shared, replaced ones
// are loaded/validated/contexted here, off the serving path. Single-threaded;
// used only by lifecycle writers (Bootstrap, RefreshModels, monitor
// demotion).
class SnapshotBuilder {
 public:
  // `base` may be null (first snapshot). `validator` (may be null in tests)
  // admits every model that enters the successor.
  SnapshotBuilder(std::shared_ptr<const EstimatorSnapshot> base,
                  ModelValidator* validator);

  // Load + admit + InitContext a replacement engine. On error the builder is
  // unchanged (the candidate is discarded; the base model keeps serving).
  Status LoadBn(const std::string& table, const std::string& bytes);
  Status LoadFactorJoin(const std::string& bytes);
  Status LoadRbx(const std::string& bytes);
  // In-memory twin of LoadBn for per-batch incremental publishes: identical
  // admission (validator + InitContext), minus the serialize -> deserialize
  // round trip an already-materialized model does not need.
  Status AdoptBn(const std::string& table, cardest::BayesNetModel model);

  void SetHealth(const std::string& table, bool healthy);
  void SetSamples(
      std::shared_ptr<const std::map<std::string, stats::TableSample>>
          samples);
  void SetFallback(std::shared_ptr<stats::SketchEstimator> fallback);
  // Stamps the successor's ingest epoch (incremental delta publishes).
  // Without a call, the successor inherits its base's epoch.
  void SetIngestEpoch(uint64_t epoch);
  // Installs the successor's NDV sketch catalog (an immutable copy of the
  // maintainer's merged state). Without a call, the base's is inherited.
  void SetNdvSketches(
      std::shared_ptr<const cardest::NdvSketchCatalog> sketches);
  // Installs the successor's mined routing table after validating it (the
  // same admission discipline every model artifact passes through). Null
  // clears routing. Without a call, the base's table is inherited — so
  // ordinary model publishes keep routes, while the epoch-match rule in
  // routing_live() retires them when ingest advances.
  Status SetRoutingTable(std::shared_ptr<const routing::RoutingTable> table);

  // Pending view (new engines first, then base): lets lifecycle code derive
  // training options and probe models before publication.
  const cardest::BnInferenceContext* bn_context(
      const std::string& table) const;
  const cardest::FactorJoinModel* fj_model() const;
  std::vector<std::string> bn_tables() const;

  // Finalizes: merges base + replacements, rebinds the FactorJoin engine to
  // the successor's BN registry (re-running its InitContext, per the paper's
  // requirement), and stamps version = base.version + 1.
  Result<std::shared_ptr<const EstimatorSnapshot>> Finish();

 private:
  std::shared_ptr<const EstimatorSnapshot> base_;
  ModelValidator* validator_;
  std::map<std::string, std::shared_ptr<BnCountEngine>> new_bns_;
  // Probe engine for the pending FactorJoin model (boundary queries during
  // BN option derivation); the serving engine is built in Finish.
  std::unique_ptr<FactorJoinEngine> fj_probe_;
  bool has_new_fj_ = false;
  std::string new_fj_bytes_;
  std::shared_ptr<RbxNdvEngine> new_rbx_;
  std::map<std::string, bool> health_overrides_;
  std::shared_ptr<const std::map<std::string, stats::TableSample>> samples_;
  std::shared_ptr<stats::SketchEstimator> fallback_;
  bool has_samples_ = false;
  bool has_fallback_ = false;
  uint64_t ingest_epoch_ = 0;
  bool has_ingest_epoch_ = false;
  std::shared_ptr<const cardest::NdvSketchCatalog> ndv_sketches_;
  bool has_ndv_sketches_ = false;
  std::shared_ptr<const routing::RoutingTable> routing_;
  bool has_routing_ = false;
};

// The per-query pinned view handed out by ByteCard::PinSnapshot: implements
// CardinalityEstimator by forwarding to one EstimatorSnapshot, and carries
// the query's fallback accounting. Lives on one query thread.
class SnapshotEstimator : public minihouse::CardinalityEstimator {
 public:
  // `hook` (optional, not owned) is the facade's runtime-feedback surface; it
  // outlives every pinned view because the facade owns both.
  explicit SnapshotEstimator(
      std::shared_ptr<const EstimatorSnapshot> snapshot,
      minihouse::QueryFeedbackHook* hook = nullptr)
      : snapshot_(std::move(snapshot)), hook_(hook) {}

  std::string Name() const override { return "bytecard"; }
  // The canonical entry point (everything below delegates through it).
  double Estimate(const cardest::CardEstRequest& request,
                  cardest::InferenceSession* session) override;
  double EstimateSelectivity(const minihouse::Table& table,
                             const minihouse::Conjunction& filters) override;
  double EstimateJoinCardinality(const minihouse::BoundQuery& query,
                                 const std::vector<int>& subset) override;
  double EstimateGroupNdv(const minihouse::BoundQuery& query) override;

  uint64_t SnapshotVersion() const override {
    return snapshot_ == nullptr ? 0 : snapshot_->version();
  }
  int64_t FallbackEstimates() const override {
    return counters_.fallback_estimates;
  }
  minihouse::RoutingStats routing_stats() const override {
    minihouse::RoutingStats stats;
    stats.route_classes =
        static_cast<int64_t>(counters_.route_classes_seen.size());
    stats.routed_estimates = counters_.routed_estimates;
    stats.route_fallbacks = counters_.route_fallbacks;
    return stats;
  }
  minihouse::QueryFeedbackHook* feedback_hook() const override {
    return hook_;
  }

  const EstimatorSnapshot* snapshot() const { return snapshot_.get(); }

 private:
  std::shared_ptr<const EstimatorSnapshot> snapshot_;
  minihouse::QueryFeedbackHook* hook_ = nullptr;
  SnapshotCounters counters_;
};

}  // namespace bytecard

#endif  // BYTECARD_BYTECARD_SNAPSHOT_H_
