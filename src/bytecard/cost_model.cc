#include "bytecard/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace bytecard {

namespace {
constexpr uint32_t kCostFormatVersion = 1;

double Log1p(double v) { return std::log1p(std::max(0.0, v)); }
}  // namespace

std::vector<double> BuildCostFeatures(
    const minihouse::BoundQuery& query, const minihouse::PhysicalPlan& plan,
    minihouse::CardinalityEstimator* estimator) {
  std::vector<double> features(kCostFeatureDim, 0.0);

  // Plan shape.
  features[0] = static_cast<double>(query.num_tables());
  features[1] = static_cast<double>(query.joins.size());
  features[2] = static_cast<double>(query.group_by.size());
  features[3] = static_cast<double>(query.aggs.size());

  // Scan-side volume: base rows, estimated surviving rows, reader mix.
  double base_rows = 0.0;
  double scanned_rows = 0.0;
  int multi_stage = 0;
  int total_filters = 0;
  for (int t = 0; t < query.num_tables(); ++t) {
    const auto& ref = query.tables[t];
    const double rows = static_cast<double>(ref.table->num_rows());
    base_rows += rows;
    scanned_rows += rows * plan.scans[t].estimated_selectivity;
    if (plan.scans[t].reader == minihouse::ReaderKind::kMultiStage) {
      ++multi_stage;
    }
    total_filters += static_cast<int>(ref.filters.size());
  }
  features[4] = Log1p(base_rows);
  features[5] = Log1p(scanned_rows);
  features[6] = static_cast<double>(multi_stage);
  features[7] = static_cast<double>(total_filters);

  // Estimated output / intermediate volume from the cardinality estimator —
  // the coupling between CardEst and cost the paper emphasizes.
  std::vector<int> all(query.num_tables());
  for (int i = 0; i < query.num_tables(); ++i) all[i] = i;
  features[8] = Log1p(estimator->EstimateJoinCardinality(query, all));
  features[9] =
      query.group_by.empty() ? 0.0 : Log1p(estimator->EstimateGroupNdv(query));
  features[10] = static_cast<double>(plan.group_ndv_hint > 0);
  features[11] = Log1p(static_cast<double>(plan.join_order.size()));
  return features;
}

Result<LearnedCostModel> LearnedCostModel::Train(
    const std::vector<CostTrace>& traces, const TrainOptions& options) {
  if (traces.size() < 4) {
    return Status::InvalidArgument("cost model needs more traces");
  }
  LearnedCostModel model;
  model.network_ = cardest::Mlp::Create({kCostFeatureDim, 32, 16, 1},
                                        options.seed);
  std::vector<std::vector<double>> inputs;
  std::vector<double> targets;
  for (const CostTrace& trace : traces) {
    if (static_cast<int>(trace.features.size()) != kCostFeatureDim) {
      return Status::InvalidArgument("cost trace feature dim mismatch");
    }
    inputs.push_back(trace.features);
    targets.push_back(Log1p(trace.exec_ms));
  }
  cardest::Mlp::TrainConfig config;
  config.epochs = options.epochs;
  config.learning_rate = options.learning_rate;
  config.seed = options.seed;
  model.network_.Train(inputs, targets, config);
  BC_RETURN_IF_ERROR(model.network_.ValidateWeights());
  return model;
}

double LearnedCostModel::PredictMs(
    const std::vector<double>& features) const {
  const double log_ms = network_.Predict(features);
  return std::max(0.0, std::expm1(std::max(0.0, log_ms)));
}

void LearnedCostModel::Serialize(BufferWriter* writer) const {
  writer->WriteU32(kCostFormatVersion);
  network_.Serialize(writer);
}

Result<LearnedCostModel> LearnedCostModel::Deserialize(BufferReader* reader) {
  uint32_t version = 0;
  BC_RETURN_IF_ERROR(reader->ReadU32(&version));
  if (version != kCostFormatVersion) {
    return Status::InvalidModel("unsupported cost-model artifact version");
  }
  LearnedCostModel model;
  BC_ASSIGN_OR_RETURN(model.network_, cardest::Mlp::Deserialize(reader));
  return model;
}

// ---------------------------------------------------------------------------
// CostModelEngine
// ---------------------------------------------------------------------------

Status CostModelEngine::LoadModel(const std::string& artifact_bytes) {
  BufferReader reader(artifact_bytes);
  BC_ASSIGN_OR_RETURN(model_, LearnedCostModel::Deserialize(&reader));
  context_ready_ = false;
  return Status::Ok();
}

Status CostModelEngine::Validate() const { return model_.Validate(); }

Status CostModelEngine::InitContext() {
  BC_RETURN_IF_ERROR(Validate());
  context_ready_ = true;
  return Status::Ok();
}

Result<FeatureVector> CostModelEngine::FeaturizeAst(
    const minihouse::BoundQuery& ast) const {
  (void)ast;
  return Status::Unimplemented(
      "cost featurization needs the physical plan; use FeaturizePlan");
}

FeatureVector CostModelEngine::FeaturizePlan(
    const minihouse::BoundQuery& query, const minihouse::PhysicalPlan& plan,
    minihouse::CardinalityEstimator* estimator) const {
  FeatureVector features;
  features.dense = BuildCostFeatures(query, plan, estimator);
  return features;
}

Result<double> CostModelEngine::Estimate(const FeatureVector& features) const {
  if (!context_ready_) {
    return Status::Internal("CostModelEngine: InitContext not called");
  }
  if (static_cast<int>(features.dense.size()) != kCostFeatureDim) {
    return Status::InvalidArgument("cost feature vector has wrong dimension");
  }
  return model_.PredictMs(features.dense);
}

int64_t CostModelEngine::ModelSizeBytes() const {
  BufferWriter writer;
  model_.Serialize(&writer);
  return static_cast<int64_t>(writer.buffer().size());
}

// ---------------------------------------------------------------------------

Result<std::vector<CostTrace>> CollectCostTraces(
    const std::vector<minihouse::BoundQuery>& queries,
    const minihouse::Optimizer& optimizer,
    minihouse::CardinalityEstimator* estimator) {
  std::vector<CostTrace> traces;
  traces.reserve(queries.size());
  for (const minihouse::BoundQuery& query : queries) {
    const minihouse::PhysicalPlan plan = optimizer.Plan(query, estimator);
    Stopwatch timer;
    BC_ASSIGN_OR_RETURN(minihouse::ExecResult result,
                        minihouse::ExecuteQuery(query, plan));
    (void)result;
    CostTrace trace;
    trace.exec_ms = timer.ElapsedMillis();
    trace.features = BuildCostFeatures(query, plan, estimator);
    traces.push_back(std::move(trace));
  }
  return traces;
}

}  // namespace bytecard
