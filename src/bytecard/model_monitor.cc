#include "bytecard/model_monitor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "minihouse/predicate.h"

namespace bytecard {

namespace {

double QError(double estimate, double truth) {
  const double e = std::max(estimate, 1.0);
  const double t = std::max(truth, 1.0);
  return std::max(e / t, t / e);
}

}  // namespace

minihouse::Conjunction ModelMonitor::GenerateProbe(
    const minihouse::Table& table, Rng* rng) const {
  minihouse::Conjunction conjuncts;
  if (table.num_rows() == 0) return conjuncts;

  // Candidate columns: anything the models can see.
  std::vector<int> candidates;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (table.schema().column(c).type != minihouse::DataType::kArray) {
      candidates.push_back(c);
    }
  }
  if (candidates.empty()) return conjuncts;

  const int want = 1 + static_cast<int>(rng->Uniform(
                           std::min<size_t>(options_.max_predicates,
                                            candidates.size())));
  rng->Shuffle(&candidates);

  for (int i = 0; i < want; ++i) {
    const int c = candidates[i];
    const minihouse::Column& col = table.column(c);
    // Anchor the predicate at a random existing row's value so probes have
    // non-trivial selectivity.
    const int64_t row = static_cast<int64_t>(rng->Uniform(table.num_rows()));
    const int64_t v = col.NumericAt(row);

    minihouse::ColumnPredicate pred;
    pred.column = c;
    pred.column_name = table.schema().column(c).name;
    switch (rng->Uniform(4)) {
      case 0:
        pred.op = minihouse::CompareOp::kEq;
        pred.operand = v;
        break;
      case 1:
        pred.op = minihouse::CompareOp::kLe;
        pred.operand = v;
        break;
      case 2:
        pred.op = minihouse::CompareOp::kGe;
        pred.operand = v;
        break;
      default: {
        pred.op = minihouse::CompareOp::kBetween;
        const int64_t row2 =
            static_cast<int64_t>(rng->Uniform(table.num_rows()));
        const int64_t v2 = col.NumericAt(row2);
        pred.operand = std::min(v, v2);
        pred.operand2 = std::max(v, v2);
        break;
      }
    }
    conjuncts.push_back(std::move(pred));
  }
  return conjuncts;
}

Result<MonitorReport> ModelMonitor::EvaluateBnModel(
    const minihouse::Table& table,
    const cardest::BnInferenceContext& context) {
  MonitorReport report;
  Rng rng(options_.seed);
  std::vector<double> qerrors;

  for (int p = 0; p < options_.probes; ++p) {
    const minihouse::Conjunction probe = GenerateProbe(table, &rng);
    if (probe.empty()) continue;

    // True cardinality by execution (the paper runs probes on ByteHouse).
    std::vector<uint8_t> selection;
    minihouse::EvaluateConjunction(probe, table, &selection);
    int64_t truth = 0;
    for (uint8_t s : selection) truth += s;

    const double estimate = context.EstimateCount(probe);
    qerrors.push_back(QError(estimate, static_cast<double>(truth)));
  }
  if (qerrors.empty()) {
    return Status::InvalidArgument("no probes could be generated for '" +
                                   table.name() + "'");
  }

  std::sort(qerrors.begin(), qerrors.end());
  report.probes = static_cast<int>(qerrors.size());
  report.median_qerror = qerrors[qerrors.size() / 2];
  report.p90_qerror = qerrors[static_cast<size_t>(0.9 * (qerrors.size() - 1))];
  report.max_qerror = qerrors.back();
  report.healthy = report.p90_qerror <= options_.qerror_threshold;
  health_[table.name()] = report.healthy;
  return report;
}

bool ModelMonitor::IsHealthy(const std::string& table) const {
  auto it = health_.find(table);
  return it == health_.end() ? true : it->second;
}

void ModelMonitor::SetHealth(const std::string& table, bool healthy) {
  health_[table] = healthy;
}

}  // namespace bytecard
