#include "bytecard/model_validator.h"

#include "bytecard/inference_engine.h"

namespace bytecard {

Status ModelValidator::CheckModelSize(int64_t size_bytes) const {
  if (size_bytes > options_.max_model_bytes) {
    return Status::ResourceExhausted(
        "model size " + std::to_string(size_bytes) +
        " exceeds per-model cap " +
        std::to_string(options_.max_model_bytes));
  }
  return Status::Ok();
}

void ModelValidator::ReclaimUntilFits(int64_t incoming,
                                      std::vector<std::string>* evicted) {
  while (total_bytes_ + incoming > options_.max_total_bytes && !lru_.empty()) {
    const std::string victim = lru_.back();
    if (evicted != nullptr) evicted->push_back(victim);
    Evict(victim);
  }
}

Status ModelValidator::Admit(const std::string& model_key,
                             const CardEstInferenceEngine& engine,
                             std::vector<std::string>* evicted) {
  // Health detector first: never admit a structurally broken model.
  BC_RETURN_IF_ERROR(engine.Validate());

  const int64_t size = engine.ModelSizeBytes();
  BC_RETURN_IF_ERROR(CheckModelSize(size));

  // Replacing an existing entry: release its budget first.
  Evict(model_key);
  ReclaimUntilFits(size, evicted);
  if (total_bytes_ + size > options_.max_total_bytes) {
    return Status::ResourceExhausted("model '" + model_key +
                                     "' cannot fit in total budget");
  }
  lru_.push_front(model_key);
  admitted_[model_key] = {lru_.begin(), size};
  total_bytes_ += size;
  return Status::Ok();
}

void ModelValidator::Touch(const std::string& model_key) {
  auto it = admitted_.find(model_key);
  if (it == admitted_.end()) return;
  lru_.erase(it->second.first);
  lru_.push_front(model_key);
  it->second.first = lru_.begin();
}

void ModelValidator::Evict(const std::string& model_key) {
  auto it = admitted_.find(model_key);
  if (it == admitted_.end()) return;
  total_bytes_ -= it->second.second;
  lru_.erase(it->second.first);
  admitted_.erase(it);
}

bool ModelValidator::IsAdmitted(const std::string& model_key) const {
  return admitted_.count(model_key) > 0;
}

}  // namespace bytecard
