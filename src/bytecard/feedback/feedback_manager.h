#ifndef BYTECARD_BYTECARD_FEEDBACK_FEEDBACK_MANAGER_H_
#define BYTECARD_BYTECARD_FEEDBACK_FEEDBACK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bytecard/data_ingestor.h"
#include "bytecard/feedback/drift_detector.h"
#include "bytecard/feedback/feedback_cache.h"
#include "bytecard/feedback/feedback_log.h"
#include "minihouse/feedback.h"

namespace bytecard::feedback {

struct FeedbackOptions {
  FeedbackLog::Options log;
  FeedbackCache::Options cache;
  OnlineDriftDetector::Options drift;
  // Serve cached actuals to the optimizer. Off leaves capture, the log, and
  // drift detection running but answers every estimate from the model —
  // the cache-ablation configuration.
  bool serve_from_cache = true;
};

// The runtime-feedback subsystem behind the engine's QueryFeedbackHook: wires
// the executor's estimate-vs-actual records into the bounded log, the
// feedback cache, and the drift detector, and subscribes to the two
// staleness signals (batch ingest → per-table invalidation; snapshot publish
// → full invalidation). One instance per ByteCard facade; all entry points
// are thread-safe.
class FeedbackManager : public minihouse::QueryFeedbackHook,
                        public IngestObserver {
 public:
  FeedbackManager() : FeedbackManager(FeedbackOptions{}) {}
  explicit FeedbackManager(FeedbackOptions options);

  // --- QueryFeedbackHook (called by optimizer / executor) -------------------
  bool LookupActual(const std::string& fingerprint,
                    double* actual_rows) override;
  void RecordQueryFeedback(minihouse::QueryFeedback feedback) override;
  // True once an observation for `fingerprint` reported a specialized-kernel
  // guard firing (stale domain stats): the compiler then keeps the generic
  // operator for that subplan. Vetoes clear per table on ingest — the batch
  // ends in a Seal, which refreshes the domain stats the kernel misjudged.
  bool SpecializationVetoed(const std::string& fingerprint) override;

  // --- IngestObserver (called by DataIngestor) ------------------------------
  void OnIngest(const IngestionEvent& event) override;

  // --- Lifecycle signals (called by the ByteCard facade) --------------------
  // A new estimator snapshot was published: all cached actuals refer to plans
  // of a retired regime — flush.
  void OnSnapshotPublished(uint64_t version);
  // A delta-updated snapshot was published by the incremental maintainer for
  // one ingested table. Only that table's cached actuals are stale (its epoch
  // was already bumped by OnIngest; this bumps again in case the publish
  // lagged further batches), and crucially the drift windows are NOT reset:
  // drift must keep accumulating across incremental publishes so the
  // demote→full-retrain safety net still fires when deltas degrade.
  void OnIncrementalPublish(const std::string& table, uint64_t version);
  // `table`'s model was demoted or re-promoted: its drift window reflects the
  // previous regime — reset so the verdict restarts clean.
  void OnTableHealthChanged(const std::string& table);

  // Toggles cache serving (capture continues either way).
  void set_serve_from_cache(bool serve) {
    serve_from_cache_.store(serve, std::memory_order_relaxed);
  }
  bool serve_from_cache() const {
    return serve_from_cache_.load(std::memory_order_relaxed);
  }

  uint64_t last_published_version() const {
    return last_published_version_.load(std::memory_order_relaxed);
  }

  FeedbackLog& log() { return log_; }
  FeedbackCache& cache() { return cache_; }
  OnlineDriftDetector& drift() { return drift_; }

 private:
  FeedbackLog log_;
  FeedbackCache cache_;
  OnlineDriftDetector drift_;
  std::atomic<bool> serve_from_cache_;
  std::atomic<uint64_t> last_published_version_{0};
  // Specialization vetoes: fingerprint → base tables the subplan touches
  // (the ingest-invalidation scope, same idea as the cache's table index).
  // Unbounded in principle but keyed by mis-specializations, which stale
  // domain stats make rare and an ingest clears.
  std::mutex veto_mu_;
  std::unordered_map<std::string, std::vector<std::string>> vetoes_;
};

}  // namespace bytecard::feedback

#endif  // BYTECARD_BYTECARD_FEEDBACK_FEEDBACK_MANAGER_H_
