#include "bytecard/feedback/drift_detector.h"

#include <algorithm>
#include <cmath>

namespace bytecard::feedback {

namespace {

// Linear-interpolation quantile over a sorted vector (same convention as the
// workload layer's qerror summaries; restated because bytecard cannot depend
// on the workload library).
double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 1.0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

OnlineDriftDetector::OnlineDriftDetector(Options options) : options_(options) {
  if (options_.window == 0) options_.window = 1;
  if (options_.min_samples == 0) options_.min_samples = 1;
}

void OnlineDriftDetector::Observe(const std::string& table, double qerror) {
  if (!std::isfinite(qerror)) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<double>& window = windows_[table];
  if (window.size() >= options_.window) window.pop_front();
  window.push_back(std::max(qerror, 1.0));
  ++observations_;
}

DriftReport OnlineDriftDetector::ReportLocked(
    const std::string& table, const std::deque<double>& window) const {
  DriftReport report;
  report.table = table;
  report.samples = window.size();
  if (window.empty()) return report;
  std::vector<double> sorted(window.begin(), window.end());
  std::sort(sorted.begin(), sorted.end());
  report.p50 = SortedQuantile(sorted, 0.5);
  report.p90 = SortedQuantile(sorted, 0.9);
  report.max = sorted.back();
  report.drifted = report.samples >= options_.min_samples &&
                   report.p90 > options_.qerror_threshold;
  return report;
}

DriftReport OnlineDriftDetector::Report(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = windows_.find(table);
  if (it == windows_.end()) {
    DriftReport report;
    report.table = table;
    return report;
  }
  return ReportLocked(table, it->second);
}

std::vector<DriftReport> OnlineDriftDetector::Reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DriftReport> reports;
  reports.reserve(windows_.size());
  for (const auto& [table, window] : windows_) {
    reports.push_back(ReportLocked(table, window));
  }
  std::sort(reports.begin(), reports.end(),
            [](const DriftReport& a, const DriftReport& b) {
              return a.table < b.table;
            });
  return reports;
}

void OnlineDriftDetector::ResetTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  windows_.erase(table);
}

int64_t OnlineDriftDetector::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_;
}

}  // namespace bytecard::feedback
