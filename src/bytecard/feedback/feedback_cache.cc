#include "bytecard/feedback/feedback_cache.h"

#include <algorithm>

namespace bytecard::feedback {

FeedbackCache::FeedbackCache(Options options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
}

void FeedbackCache::TouchLocked(Entry* entry, const std::string& fingerprint) {
  lru_.erase(entry->lru_it);
  lru_.push_front(fingerprint);
  entry->lru_it = lru_.begin();
}

bool FeedbackCache::IsStaleLocked(const Entry& entry) const {
  for (const auto& [table, epoch] : entry.tables) {
    auto it = table_epochs_.find(table);
    if (it != table_epochs_.end() && it->second > epoch) return true;
  }
  return false;
}

bool FeedbackCache::Lookup(const std::string& fingerprint,
                           double* actual_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  if (IsStaleLocked(it->second)) {
    // Lazy drop of an entry invalidated by a table-epoch bump.
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    ++stats_.invalidated;
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  TouchLocked(&it->second, fingerprint);
  *actual_rows = it->second.actual_rows;
  return true;
}

void FeedbackCache::Put(const std::string& fingerprint, double actual_rows,
                        const std::vector<std::string>& tables) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    // Re-observation: the new actual was measured against the data as of
    // now, so refresh the value in place and re-stamp the epochs (this also
    // resurrects an entry that had gone stale).
    it->second.actual_rows = actual_rows;
    for (auto& [table, epoch] : it->second.tables) {
      auto te = table_epochs_.find(table);
      epoch = te == table_epochs_.end() ? 0 : te->second;
    }
    TouchLocked(&it->second, fingerprint);
    return;
  }
  if (entries_.size() >= options_.capacity) {
    const std::string& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(fingerprint);
  Entry entry;
  entry.actual_rows = actual_rows;
  entry.tables.reserve(tables.size());
  for (const std::string& table : tables) {
    auto te = table_epochs_.find(table);
    entry.tables.emplace_back(table,
                              te == table_epochs_.end() ? 0 : te->second);
  }
  entry.lru_it = lru_.begin();
  entries_.emplace(fingerprint, std::move(entry));
  ++stats_.inserts;
}

void FeedbackCache::InvalidateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  ++table_epochs_[table];
}

void FeedbackCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidated += static_cast<int64_t>(entries_.size());
  entries_.clear();
  lru_.clear();
}

uint64_t FeedbackCache::TableEpoch(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_epochs_.find(table);
  return it == table_epochs_.end() ? 0 : it->second;
}

FeedbackCache::Stats FeedbackCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  // Pending-stale entries count as already invalidated (they can never hit
  // again) and are excluded from the live-entry count, so callers observe
  // the same numbers the old eager per-table scan produced.
  int64_t stale = 0;
  for (const auto& [fingerprint, entry] : entries_) {
    (void)fingerprint;
    if (IsStaleLocked(entry)) ++stale;
  }
  s.invalidated += stale;
  s.entries = entries_.size() - static_cast<size_t>(stale);
  return s;
}

}  // namespace bytecard::feedback
