#include "bytecard/feedback/feedback_cache.h"

#include <algorithm>

namespace bytecard::feedback {

FeedbackCache::FeedbackCache(Options options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
}

void FeedbackCache::TouchLocked(Entry* entry, const std::string& fingerprint) {
  lru_.erase(entry->lru_it);
  lru_.push_front(fingerprint);
  entry->lru_it = lru_.begin();
}

bool FeedbackCache::Lookup(const std::string& fingerprint,
                           double* actual_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  TouchLocked(&it->second, fingerprint);
  *actual_rows = it->second.actual_rows;
  return true;
}

void FeedbackCache::Put(const std::string& fingerprint, double actual_rows,
                        const std::vector<std::string>& tables) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    // Re-observation of a live entry: refresh the value in place (executions
    // of the same subplan against unchanged data agree anyway).
    it->second.actual_rows = actual_rows;
    TouchLocked(&it->second, fingerprint);
    return;
  }
  if (entries_.size() >= options_.capacity) {
    const std::string& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(fingerprint);
  Entry entry;
  entry.actual_rows = actual_rows;
  entry.tables = tables;
  entry.lru_it = lru_.begin();
  entries_.emplace(fingerprint, std::move(entry));
  ++stats_.inserts;
}

void FeedbackCache::InvalidateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::vector<std::string>& tables = it->second.tables;
    if (std::find(tables.begin(), tables.end(), table) != tables.end()) {
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
      ++stats_.invalidated;
    } else {
      ++it;
    }
  }
}

void FeedbackCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidated += static_cast<int64_t>(entries_.size());
  entries_.clear();
  lru_.clear();
}

FeedbackCache::Stats FeedbackCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

}  // namespace bytecard::feedback
