#include "bytecard/feedback/feedback_log.h"

#include <utility>

namespace bytecard::feedback {

FeedbackLog::FeedbackLog(Options options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
}

void FeedbackLog::Append(minihouse::QueryFeedback record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++appended_;
  if (records_.size() >= options_.capacity) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(std::move(record));
}

std::vector<minihouse::QueryFeedback> FeedbackLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {records_.begin(), records_.end()};
}

std::vector<minihouse::QueryFeedback> FeedbackLog::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<minihouse::QueryFeedback> out;
  out.reserve(records_.size());
  for (minihouse::QueryFeedback& r : records_) out.push_back(std::move(r));
  records_.clear();
  return out;
}

FeedbackLog::Stats FeedbackLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.appended = appended_;
  s.dropped = dropped_;
  s.records = records_.size();
  return s;
}

}  // namespace bytecard::feedback
