#ifndef BYTECARD_BYTECARD_FEEDBACK_DRIFT_DETECTOR_H_
#define BYTECARD_BYTECARD_FEEDBACK_DRIFT_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace bytecard::feedback {

// Streaming drift verdict for one table's single-table estimates.
struct DriftReport {
  std::string table;
  size_t samples = 0;  // q-errors in the window
  double p50 = 1.0;
  double p90 = 1.0;
  double max = 1.0;
  bool drifted = false;  // p90 over threshold with enough samples
};

// Aggregates per-table q-error quantiles from runtime feedback — the
// ModelMonitor's health signal harvested from real traffic instead of
// synthetic probes. Each table keeps a sliding window of the most recent
// single-table q-errors; a table drifts when the window holds enough samples
// and its p90 exceeds the threshold (quantile-based, matching the monitor's
// Q-Error convention: one catastrophic outlier does not demote a table, a
// consistent pattern does).
//
// Only model-answered single-table observations should be fed in: cache-served
// estimates have q-error 1 by construction and would mask drift, and join
// q-errors compound multiple tables' errors (FactorJoin bounds on top of BN
// selectivities), so they cannot be attributed to one table's model.
class OnlineDriftDetector {
 public:
  struct Options {
    size_t window = 64;            // q-errors retained per table
    size_t min_samples = 8;        // verdicts need at least this many
    double qerror_threshold = 16;  // p90 above this = drifted
  };

  OnlineDriftDetector() : OnlineDriftDetector(Options{}) {}
  explicit OnlineDriftDetector(Options options);

  // Records one model-answered q-error observation for `table`.
  void Observe(const std::string& table, double qerror);

  // Current verdict for one table (zero-sample report if never observed).
  DriftReport Report(const std::string& table) const;

  // Verdicts for every observed table, sorted by table name.
  std::vector<DriftReport> Reports() const;

  // Clears a table's window — called when its model is retrained or demoted,
  // so stale pre-action q-errors cannot re-trigger on the new regime.
  void ResetTable(const std::string& table);

  int64_t observations() const;

 private:
  DriftReport ReportLocked(const std::string& table,
                           const std::deque<double>& window) const;

  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::deque<double>> windows_;
  int64_t observations_ = 0;
};

}  // namespace bytecard::feedback

#endif  // BYTECARD_BYTECARD_FEEDBACK_DRIFT_DETECTOR_H_
