#ifndef BYTECARD_BYTECARD_FEEDBACK_FEEDBACK_CACHE_H_
#define BYTECARD_BYTECARD_FEEDBACK_FEEDBACK_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace bytecard::feedback {

// LRU cache of observed subplan cardinalities, keyed by the canonical
// cross-query fingerprints from minihouse/feedback.h. A hit answers the
// optimizer's question with the *exact* cardinality a previous execution of
// the same subplan produced — no model call, q-error 1 by construction.
//
// Correctness rests entirely on invalidation: a cached actual is only valid
// while the underlying data is. Entries are dropped (a) per base table when
// the ingestor appends rows to it, and (b) wholesale when a new estimator
// snapshot is published (model retrain/demotion implies the workload regime
// changed; cheap full flush keeps the rule simple and obviously safe).
class FeedbackCache {
 public:
  struct Options {
    size_t capacity = 2048;  // entries (LRU eviction)
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t inserts = 0;
    int64_t evictions = 0;    // LRU capacity evictions
    int64_t invalidated = 0;  // entries dropped by invalidation
    size_t entries = 0;       // currently cached
  };

  FeedbackCache() : FeedbackCache(Options{}) {}
  explicit FeedbackCache(Options options);

  // On hit, refreshes recency and writes the observed cardinality.
  bool Lookup(const std::string& fingerprint, double* actual_rows);

  // Inserts/overwrites the observation. `tables` scopes per-table
  // invalidation (every base table the subplan reads).
  void Put(const std::string& fingerprint, double actual_rows,
           const std::vector<std::string>& tables);

  // Drops every entry touching `table` (called on ingest into that table).
  void InvalidateTable(const std::string& table);

  // Drops everything (called on snapshot publish).
  void InvalidateAll();

  Stats stats() const;

 private:
  struct Entry {
    double actual_rows = 0.0;
    std::vector<std::string> tables;
    std::list<std::string>::iterator lru_it;  // position in lru_
  };

  void TouchLocked(Entry* entry, const std::string& fingerprint);

  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  Stats stats_;
};

}  // namespace bytecard::feedback

#endif  // BYTECARD_BYTECARD_FEEDBACK_FEEDBACK_CACHE_H_
