#ifndef BYTECARD_BYTECARD_FEEDBACK_FEEDBACK_CACHE_H_
#define BYTECARD_BYTECARD_FEEDBACK_FEEDBACK_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace bytecard::feedback {

// LRU cache of observed subplan cardinalities, keyed by the canonical
// cross-query fingerprints from minihouse/feedback.h. A hit answers the
// optimizer's question with the *exact* cardinality a previous execution of
// the same subplan produced — no model call, q-error 1 by construction.
//
// Correctness rests entirely on invalidation: a cached actual is only valid
// while the underlying data is. Invalidation is epoch-based per table: every
// entry records the ingest epoch of each base table it reads at Put time,
// and an ingest batch into table T just bumps T's epoch (O(1), no scan).
// Entries whose recorded epoch lags the table's current epoch are stale —
// Lookup drops them lazily, and stats() reports them as invalidated, so the
// observable contract matches the old eager per-table scan exactly. A new
// estimator snapshot from retrain/demotion still flushes wholesale (the
// workload regime changed; cheap full drop keeps that rule obviously safe),
// but incremental delta publishes bump only the ingested table's epoch.
class FeedbackCache {
 public:
  struct Options {
    size_t capacity = 2048;  // entries (LRU eviction)
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t inserts = 0;
    int64_t evictions = 0;    // LRU capacity evictions
    int64_t invalidated = 0;  // entries dropped (or pending-stale) by invalidation
    size_t entries = 0;       // currently cached and live
  };

  FeedbackCache() : FeedbackCache(Options{}) {}
  explicit FeedbackCache(Options options);

  // On hit, refreshes recency and writes the observed cardinality. A stale
  // entry (some base table ingested since Put) is dropped and misses.
  bool Lookup(const std::string& fingerprint, double* actual_rows);

  // Inserts/overwrites the observation, stamped with each base table's
  // current ingest epoch. `tables` scopes per-table invalidation (every base
  // table the subplan reads).
  void Put(const std::string& fingerprint, double actual_rows,
           const std::vector<std::string>& tables);

  // Marks every entry touching `table` stale by bumping its ingest epoch
  // (called on ingest into that table). O(1).
  void InvalidateTable(const std::string& table);

  // Drops everything (called on full snapshot publish).
  void InvalidateAll();

  // Current ingest epoch of `table` (0 if never invalidated).
  uint64_t TableEpoch(const std::string& table) const;

  Stats stats() const;

 private:
  struct Entry {
    double actual_rows = 0.0;
    // Each base table with the epoch observed at Put time.
    std::vector<std::pair<std::string, uint64_t>> tables;
    std::list<std::string>::iterator lru_it;  // position in lru_
  };

  void TouchLocked(Entry* entry, const std::string& fingerprint);
  bool IsStaleLocked(const Entry& entry) const;

  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, uint64_t> table_epochs_;
  std::list<std::string> lru_;  // front = most recently used
  Stats stats_;
};

}  // namespace bytecard::feedback

#endif  // BYTECARD_BYTECARD_FEEDBACK_FEEDBACK_CACHE_H_
