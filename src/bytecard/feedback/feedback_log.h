#ifndef BYTECARD_BYTECARD_FEEDBACK_FEEDBACK_LOG_H_
#define BYTECARD_BYTECARD_FEEDBACK_FEEDBACK_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "minihouse/feedback.h"

namespace bytecard::feedback {

// Bounded, thread-safe log of executed-query feedback records. Producers are
// query threads (one Append per executed query, from the executor's feedback
// emit); consumers are the drift detector's aggregation pass and diagnostics.
// When full, the oldest record is dropped — the log is a recent-traffic
// window, not an audit trail.
class FeedbackLog {
 public:
  struct Options {
    size_t capacity = 4096;  // records retained (FIFO eviction)
  };

  struct Stats {
    int64_t appended = 0;  // lifetime Append calls
    int64_t dropped = 0;   // records evicted by the capacity bound
    size_t records = 0;    // currently retained
  };

  FeedbackLog() : FeedbackLog(Options{}) {}
  explicit FeedbackLog(Options options);

  void Append(minihouse::QueryFeedback record);

  // Copies the retained records, oldest first.
  std::vector<minihouse::QueryFeedback> Snapshot() const;

  // Moves the retained records out, oldest first (log left empty).
  std::vector<minihouse::QueryFeedback> Drain();

  Stats stats() const;

 private:
  Options options_;
  mutable std::mutex mu_;
  std::deque<minihouse::QueryFeedback> records_;
  int64_t appended_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace bytecard::feedback

#endif  // BYTECARD_BYTECARD_FEEDBACK_FEEDBACK_LOG_H_
