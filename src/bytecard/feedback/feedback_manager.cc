#include "bytecard/feedback/feedback_manager.h"

#include <algorithm>
#include <utility>

namespace bytecard::feedback {

FeedbackManager::FeedbackManager(FeedbackOptions options)
    : log_(options.log),
      cache_(options.cache),
      drift_(options.drift),
      serve_from_cache_(options.serve_from_cache) {}

bool FeedbackManager::LookupActual(const std::string& fingerprint,
                                   double* actual_rows) {
  if (!serve_from_cache_.load(std::memory_order_relaxed)) return false;
  return cache_.Lookup(fingerprint, actual_rows);
}

void FeedbackManager::RecordQueryFeedback(minihouse::QueryFeedback feedback) {
  for (const minihouse::OperatorFeedback& op : feedback.ops) {
    // Every exact observation is cacheable, whatever answered the estimate.
    cache_.Put(op.fingerprint, op.actual, op.tables);
    // Drift detection sees only model-answered single-table observations:
    // cache-served ones have q-error 1 by construction, and join q-errors
    // compound several tables' models.
    if (op.kind == minihouse::FeedbackKind::kScan && !op.served_from_cache &&
        op.tables.size() == 1) {
      drift_.Observe(op.tables[0], op.qerror);
    }
    // A specialized kernel's guard fired: veto the specialization for this
    // subplan until fresh domain stats arrive (next ingest of its tables).
    if (op.mis_specialized) {
      std::lock_guard<std::mutex> lock(veto_mu_);
      vetoes_[op.fingerprint] = op.tables;
    }
  }
  log_.Append(std::move(feedback));
}

bool FeedbackManager::SpecializationVetoed(const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(veto_mu_);
  return vetoes_.count(fingerprint) > 0;
}

void FeedbackManager::OnIngest(const IngestionEvent& event) {
  cache_.InvalidateTable(event.table);
  // The batch's Seal refreshed the table's domain stats, so vetoes taken
  // against the stale bounds no longer apply.
  std::lock_guard<std::mutex> lock(veto_mu_);
  for (auto it = vetoes_.begin(); it != vetoes_.end();) {
    const std::vector<std::string>& tables = it->second;
    const bool touches =
        std::find(tables.begin(), tables.end(), event.table) != tables.end();
    it = touches ? vetoes_.erase(it) : ++it;
  }
}

void FeedbackManager::OnSnapshotPublished(uint64_t version) {
  last_published_version_.store(version, std::memory_order_relaxed);
  cache_.InvalidateAll();
}

void FeedbackManager::OnIncrementalPublish(const std::string& table,
                                           uint64_t version) {
  last_published_version_.store(version, std::memory_order_relaxed);
  cache_.InvalidateTable(table);
}

void FeedbackManager::OnTableHealthChanged(const std::string& table) {
  drift_.ResetTable(table);
}

}  // namespace bytecard::feedback
