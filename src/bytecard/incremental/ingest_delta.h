#ifndef BYTECARD_BYTECARD_INCREMENTAL_INGEST_DELTA_H_
#define BYTECARD_BYTECARD_INCREMENTAL_INGEST_DELTA_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cardest/ndv/hll.h"

namespace bytecard::incremental {

// Per-column summary of one ingest batch, computed in a single pass over the
// batch's values (never the full table). Values live in the column's numeric
// code space — the same space predicates, discretizers, and join bucketizers
// operate in.
struct ColumnDelta {
  int column = -1;
  bool has_values = false;  // false for kArray columns (no scalar domain)
  int64_t min = 0;
  int64_t max = 0;
  // Distinct batch value -> occurrence count, ascending by value.
  std::vector<std::pair<int64_t, int64_t>> value_counts;
  // Batch-local distinct sketch, ready to merge into the table's NDV sketch.
  cardest::NdvSketch hll;
};

// Everything the incremental maintainer needs from one DataIngestor batch:
// identity (table + epoch), the raw column-major batch values (the BN CPD
// count updates need joint per-row bins, which per-column summaries cannot
// provide), and the per-column summaries for the FactorJoin histogram merges
// and NDV sketch merges. Extracted once per batch by the ingestor; ~O(batch)
// memory, dropped after the observers run.
struct IngestDelta {
  std::string table;
  uint64_t epoch = 0;        // the ingestor's cumulative batch offset
  int64_t first_row = 0;     // batch occupies rows [first_row, first_row+rows_added)
  int64_t rows_added = 0;
  int64_t total_rows = 0;    // table rows after the batch
  // batch[c][i] = column c's numeric code of the i-th appended row; empty for
  // kArray columns.
  std::vector<std::vector<int64_t>> batch;
  std::vector<ColumnDelta> columns;  // one per schema column

  // Builds the per-column summaries from already-collected batch values.
  static IngestDelta Build(std::string table, uint64_t epoch,
                           int64_t first_row, int64_t total_rows,
                           std::vector<std::vector<int64_t>> batch,
                           int hll_precision = 12);
};

}  // namespace bytecard::incremental

#endif  // BYTECARD_BYTECARD_INCREMENTAL_INGEST_DELTA_H_
