#include "bytecard/incremental/ingest_delta.h"

#include <algorithm>
#include <map>

namespace bytecard::incremental {

IngestDelta IngestDelta::Build(std::string table, uint64_t epoch,
                               int64_t first_row, int64_t total_rows,
                               std::vector<std::vector<int64_t>> batch,
                               int hll_precision) {
  IngestDelta delta;
  delta.table = std::move(table);
  delta.epoch = epoch;
  delta.first_row = first_row;
  delta.total_rows = total_rows;
  delta.batch = std::move(batch);
  delta.rows_added = total_rows - first_row;
  delta.columns.resize(delta.batch.size());
  for (size_t c = 0; c < delta.batch.size(); ++c) {
    ColumnDelta& cd = delta.columns[c];
    cd.column = static_cast<int>(c);
    cd.hll = cardest::NdvSketch(hll_precision);
    const std::vector<int64_t>& values = delta.batch[c];
    if (values.empty()) continue;  // kArray column: no scalar summary
    cd.has_values = true;
    cd.min = *std::min_element(values.begin(), values.end());
    cd.max = *std::max_element(values.begin(), values.end());
    std::map<int64_t, int64_t> counts;
    for (int64_t v : values) {
      ++counts[v];
      cd.hll.Add(v);
    }
    cd.value_counts.assign(counts.begin(), counts.end());
  }
  return delta;
}

}  // namespace bytecard::incremental
