#ifndef BYTECARD_BYTECARD_INCREMENTAL_FJ_DELTA_H_
#define BYTECARD_BYTECARD_INCREMENTAL_FJ_DELTA_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bytecard/incremental/ingest_delta.h"
#include "cardest/factorjoin/factor_join.h"
#include "cardest/ndv/hll.h"
#include "common/status.h"
#include "minihouse/database.h"

namespace bytecard::incremental {

// Incremental maintenance state for the global FactorJoin model: a private
// mutable copy of the model whose per-bucket histograms absorb ingest deltas,
// plus per-bucket HyperLogLog sketches that track each bucket's distinct key
// count exactly as data grows (bucket boundaries are frozen between full
// retrains, so a batch only ever adds mass to existing buckets).
//
// Merge semantics per bucket b of a key column:
//   count[b]    += batch rows landing in b                 (exact)
//   max_freq[b] += batch's max single-value frequency in b (upper bound:
//                  old-max + batch-max >= true merged max, so the paper's
//                  kUpperBound combiner stays a valid bound)
//   distinct[b]  = min(count[b], max(old, per-bucket HLL estimate))
class FjMaintenanceState {
 public:
  // Copies `model` and seeds the per-bucket distinct sketches with one pass
  // over every member key column in `db` (enable-time cost only; appends
  // from then on merge batch sketches).
  static Result<FjMaintenanceState> Seed(const cardest::FactorJoinModel& model,
                                         const minihouse::Database& db,
                                         int hll_precision = 12);

  // Merges the batch's value counts into every key column of delta.table.
  // Returns true when the delta touched at least one modelled key column
  // (i.e. a successor FactorJoin artifact is worth publishing).
  Result<bool> ApplyBatch(const IngestDelta& delta);

  // Adopts a freshly retrained model's stats (full retrain via the normal
  // lifecycle). The distinct sketches are kept: they track the data itself,
  // which only grows, independent of which model generation is live.
  void AdoptModel(const cardest::FactorJoinModel& model);

  // Serialized bytes of the maintained model, loadable through the same
  // SnapshotBuilder::LoadFactorJoin path a trained artifact takes.
  std::string SerializeModel() const;

  const cardest::FactorJoinModel& model() const { return model_; }

 private:
  FjMaintenanceState() = default;

  cardest::FactorJoinModel model_;
  // (table, column) -> one sketch per bucket of that key's group.
  std::map<std::pair<std::string, int>, std::vector<cardest::NdvSketch>>
      bucket_hlls_;
  int precision_ = 12;
};

}  // namespace bytecard::incremental

#endif  // BYTECARD_BYTECARD_INCREMENTAL_FJ_DELTA_H_
