#ifndef BYTECARD_BYTECARD_INCREMENTAL_BN_DELTA_H_
#define BYTECARD_BYTECARD_INCREMENTAL_BN_DELTA_H_

#include <cstdint>
#include <vector>

#include "bytecard/incremental/ingest_delta.h"
#include "cardest/bayes/bayes_net.h"
#include "common/status.h"

namespace bytecard::incremental {

// Copy-on-write CPD count page for one table's Bayesian network (the
// BayesCard-style delta update): the Chow-Liu structure and discretizers of
// the base model are frozen, the smoothed-ML probabilities are unfolded back
// into pseudo-counts once, and every ingest batch increments those counts in
// place (binning each batch row through the frozen discretizers, which clamp
// drifted values into the edge bins). ToModel renormalizes with exactly the
// Laplace formulas BayesNetModel::Train uses, so a page that absorbed zero
// batches reproduces the base CPDs up to one extra alpha of smoothing mass.
// Structure drift is deliberately NOT handled here — the OnlineDriftDetector
// demotes the table and a full retrain relearns the tree.
class BnCountPage {
 public:
  // Unfolds `model`'s CPDs into pseudo-counts. Root counts are p[b] * N;
  // non-root joint counts come from a top-down parent-marginal propagation
  // (marginal[child][b] = sum_p marginal[parent][p] * cpd[p][b]), so the
  // reconstruction needs no data pass. `laplace_alpha` must match the value
  // the model was trained with.
  static Result<BnCountPage> FromModel(const cardest::BayesNetModel& model,
                                       double laplace_alpha);

  // Increments the counts with one batch: bins every batch row of every
  // modelled column through the frozen discretizers and bumps root counts /
  // parent-child joint counts. O(batch_rows * nodes).
  Status ApplyBatch(const IngestDelta& delta);

  // Renormalized successor model (frozen structure, updated CPDs, row count
  // advanced by the absorbed rows). Passes ValidateStructure by
  // construction: counts are non-negative and alpha > 0 keeps every cell
  // finite and positive.
  cardest::BayesNetModel ToModel() const;

  int64_t rows_absorbed() const { return rows_absorbed_; }
  double total_rows() const { return total_rows_; }

 private:
  BnCountPage() = default;

  cardest::BayesNetModel base_;  // frozen structure + discretizers
  double alpha_ = 0.02;
  double total_rows_ = 0.0;  // pseudo-count total (base N + absorbed rows)
  // Per node: root -> nb counts; non-root -> pb*nb joint counts (row-major
  // [parent_bin][bin], same layout as the CPD matrix).
  std::vector<std::vector<double>> counts_;
  int64_t rows_absorbed_ = 0;
};

}  // namespace bytecard::incremental

#endif  // BYTECARD_BYTECARD_INCREMENTAL_BN_DELTA_H_
