#include "bytecard/incremental/bn_delta.h"

#include <cmath>
#include <utility>

namespace bytecard::incremental {

namespace {

// Parents-before-children order of the model's tree (same walk InitContext
// does). Returns empty on malformed structure.
std::vector<int> TopologicalOrder(const std::vector<cardest::BnNode>& nodes) {
  const int n = static_cast<int>(nodes.size());
  std::vector<std::vector<int>> children(n);
  std::vector<int> order;
  order.reserve(n);
  for (int v = 0; v < n; ++v) {
    if (nodes[v].parent < 0) {
      order.push_back(v);
    } else if (nodes[v].parent < n) {
      children[nodes[v].parent].push_back(v);
    } else {
      return {};
    }
  }
  for (size_t i = 0; i < order.size(); ++i) {
    for (int c : children[order[i]]) order.push_back(c);
  }
  if (static_cast<int>(order.size()) != n) return {};  // cycle or stray root
  return order;
}

}  // namespace

Result<BnCountPage> BnCountPage::FromModel(const cardest::BayesNetModel& model,
                                           double laplace_alpha) {
  BC_RETURN_IF_ERROR(model.ValidateStructure());
  if (model.row_count() <= 0) {
    return Status::InvalidArgument("cannot unfold counts of an empty model");
  }
  if (laplace_alpha <= 0.0) {
    return Status::InvalidArgument("laplace alpha must be positive");
  }
  const std::vector<cardest::BnNode>& nodes = model.nodes();
  const std::vector<int> topo = TopologicalOrder(nodes);
  if (topo.empty()) {
    return Status::InvalidModel("BN structure not a rooted tree");
  }

  BnCountPage page;
  page.base_ = model;
  page.alpha_ = laplace_alpha;
  page.total_rows_ = static_cast<double>(model.row_count());
  page.counts_.resize(nodes.size());

  // Top-down marginal propagation: marginal[v][b] = P(node v in bin b).
  const double n = page.total_rows_;
  std::vector<std::vector<double>> marginal(nodes.size());
  for (int v : topo) {
    const cardest::BnNode& node = nodes[v];
    const int nb = node.num_bins();
    if (node.parent < 0) {
      marginal[v] = node.cpd;
      page.counts_[v].resize(nb);
      for (int b = 0; b < nb; ++b) page.counts_[v][b] = node.cpd[b] * n;
    } else {
      const std::vector<double>& pm = marginal[node.parent];
      const int pb = static_cast<int>(pm.size());
      marginal[v].assign(nb, 0.0);
      page.counts_[v].assign(static_cast<size_t>(pb) * nb, 0.0);
      for (int p = 0; p < pb; ++p) {
        for (int b = 0; b < nb; ++b) {
          const double joint = pm[p] * node.cpd[static_cast<size_t>(p) * nb + b];
          marginal[v][b] += joint;
          page.counts_[v][static_cast<size_t>(p) * nb + b] = joint * n;
        }
      }
    }
  }
  return page;
}

Status BnCountPage::ApplyBatch(const IngestDelta& delta) {
  if (delta.table != base_.table_name()) {
    return Status::InvalidArgument("delta for table '" + delta.table +
                                   "' applied to BN of '" +
                                   base_.table_name() + "'");
  }
  const std::vector<cardest::BnNode>& nodes = base_.nodes();
  const int64_t rows = delta.rows_added;
  if (rows <= 0) return Status::InvalidArgument("empty ingest delta");

  // Bin every batch row of every modelled column through the frozen
  // discretizers (BinOf clamps out-of-range values into the edge bins, so
  // drifted batches still land somewhere — the drift detector, not this
  // path, decides when that stops being acceptable).
  std::vector<std::vector<int>> bins(nodes.size());
  for (size_t v = 0; v < nodes.size(); ++v) {
    const int col = nodes[v].column;
    if (col < 0 || col >= static_cast<int>(delta.batch.size()) ||
        static_cast<int64_t>(delta.batch[col].size()) != rows) {
      return Status::InvalidArgument(
          "ingest delta missing values for modelled column " +
          std::to_string(col));
    }
    bins[v].reserve(rows);
    for (int64_t value : delta.batch[col]) {
      bins[v].push_back(nodes[v].discretizer.BinOf(value));
    }
  }

  for (size_t v = 0; v < nodes.size(); ++v) {
    const int nb = nodes[v].num_bins();
    if (nodes[v].parent < 0) {
      for (int64_t i = 0; i < rows; ++i) counts_[v][bins[v][i]] += 1.0;
    } else {
      const std::vector<int>& pbins = bins[nodes[v].parent];
      for (int64_t i = 0; i < rows; ++i) {
        counts_[v][static_cast<size_t>(pbins[i]) * nb + bins[v][i]] += 1.0;
      }
    }
  }
  total_rows_ += static_cast<double>(rows);
  rows_absorbed_ += rows;
  return Status::Ok();
}

cardest::BayesNetModel BnCountPage::ToModel() const {
  std::vector<cardest::BnNode> nodes = base_.nodes();
  for (size_t v = 0; v < nodes.size(); ++v) {
    cardest::BnNode& node = nodes[v];
    const int nb = node.num_bins();
    if (node.parent < 0) {
      const double denom = total_rows_ + alpha_ * nb;
      for (int b = 0; b < nb; ++b) {
        node.cpd[b] = (counts_[v][b] + alpha_) / denom;
      }
    } else {
      const int pb = static_cast<int>(counts_[v].size()) / nb;
      for (int p = 0; p < pb; ++p) {
        double parent_count = 0.0;
        for (int b = 0; b < nb; ++b) {
          parent_count += counts_[v][static_cast<size_t>(p) * nb + b];
        }
        const double denom = parent_count + alpha_ * nb;
        for (int b = 0; b < nb; ++b) {
          node.cpd[static_cast<size_t>(p) * nb + b] =
              (counts_[v][static_cast<size_t>(p) * nb + b] + alpha_) / denom;
        }
      }
    }
  }
  return cardest::BayesNetModel::FromParts(
      base_.table_name(), static_cast<int64_t>(std::llround(total_rows_)),
      std::move(nodes));
}

}  // namespace bytecard::incremental
