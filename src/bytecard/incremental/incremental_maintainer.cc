#include "bytecard/incremental/incremental_maintainer.h"

#include <utility>

#include "bytecard/bytecard.h"
#include "common/logging.h"
#include "common/serde.h"

namespace bytecard::incremental {

IncrementalMaintainer::IncrementalMaintainer(ByteCard* bytecard,
                                             IncrementalOptions options)
    : bytecard_(bytecard), options_(options) {}

Status IncrementalMaintainer::Seed(const minihouse::Database& db,
                                   const EstimatorSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.update_factorjoin && snapshot.fj_engine() != nullptr) {
    BC_ASSIGN_OR_RETURN(FjMaintenanceState fj,
                        FjMaintenanceState::Seed(snapshot.fj_engine()->model(),
                                                 db, options_.hll_precision));
    fj_ = std::move(fj);
  }
  if (options_.update_ndv) {
    for (const std::string& name : db.TableNames()) {
      const minihouse::Table* table = db.FindTable(name).value();
      ndv_.SeedTable(*table, options_.hll_precision);
    }
  }
  return Status::Ok();
}

void IncrementalMaintainer::OnIngest(const IngestionEvent& event) {
  if (event.delta == nullptr) return;
  Result<uint64_t> published = bytecard_->ApplyIngestDelta(*event.delta);
  if (!published.ok()) {
    BC_LOG(Warning) << "incremental maintenance for batch @" << event.offset
                    << " of '" << event.table
                    << "' failed: " << published.status().ToString();
  }
}

Result<IncrementalUpdates> IncrementalMaintainer::ComputeUpdates(
    const IngestDelta& delta, const EstimatorSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  IncrementalUpdates updates;

  // BN: delta-update only a live, healthy model — a demoted table is the
  // drift detector's business, and its retrain resets the page anyway.
  if (options_.update_bn) {
    const cardest::BayesNetModel* model = snapshot.bn_model(delta.table);
    if (model != nullptr && snapshot.IsHealthy(delta.table)) {
      auto it = pages_.find(delta.table);
      if (it == pages_.end()) {
        BC_ASSIGN_OR_RETURN(
            BnCountPage page,
            BnCountPage::FromModel(*model, options_.laplace_alpha));
        it = pages_.emplace(delta.table, std::move(page)).first;
      }
      BC_RETURN_IF_ERROR(it->second.ApplyBatch(delta));
      updates.bn.emplace_back(delta.table, it->second.ToModel());
      ++stats_.bn_updates;
    }
  }

  if (options_.update_factorjoin && fj_.has_value()) {
    BC_ASSIGN_OR_RETURN(bool touched, fj_->ApplyBatch(delta));
    if (touched) {
      updates.has_fj = true;
      updates.fj_bytes = fj_->SerializeModel();
      ++stats_.fj_updates;
    }
  }

  if (options_.update_ndv) {
    bool merged = false;
    for (const ColumnDelta& cd : delta.columns) {
      if (!cd.has_values) continue;
      cardest::NdvSketch* sketch = ndv_.FindMutable(delta.table, cd.column);
      if (sketch == nullptr || sketch->precision() != cd.hll.precision()) {
        continue;  // never seeded (or precision changed) — skip, don't guess
      }
      sketch->Merge(cd.hll);
      merged = true;
      ++stats_.ndv_merges;
    }
    if (merged) {
      updates.ndv = std::make_shared<cardest::NdvSketchCatalog>(ndv_);
    }
  }

  return updates;
}

void IncrementalMaintainer::OnModelReplaced(const std::string& kind,
                                            const std::string& name,
                                            const EstimatorSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (kind == "bn") {
    if (pages_.erase(name) > 0) ++stats_.resets;
  } else if (kind == "factorjoin") {
    if (fj_.has_value() && snapshot.fj_engine() != nullptr) {
      fj_->AdoptModel(snapshot.fj_engine()->model());
    }
  }
}

void IncrementalMaintainer::RecordPublish(double seconds,
                                          const IngestDelta& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.batches_applied;
  stats_.rows_absorbed += delta.rows_added;
  ++stats_.snapshots_published;
  stats_.maintenance_seconds += seconds;
}

IncrementalStats IncrementalMaintainer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace bytecard::incremental
