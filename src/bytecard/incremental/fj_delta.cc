#include "bytecard/incremental/fj_delta.h"

#include <algorithm>

#include "minihouse/column.h"
#include "minihouse/table.h"

namespace bytecard::incremental {

Result<FjMaintenanceState> FjMaintenanceState::Seed(
    const cardest::FactorJoinModel& model, const minihouse::Database& db,
    int hll_precision) {
  FjMaintenanceState state;
  state.model_ = model;
  state.precision_ = hll_precision;
  for (const cardest::FactorJoinModel::KeyGroup& group : model.groups()) {
    for (const cardest::JoinKeyRef& member : group.members) {
      BC_ASSIGN_OR_RETURN(const minihouse::Table* table,
                          db.FindTable(member.table));
      if (member.column < 0 || member.column >= table->num_columns()) {
        return Status::InvalidArgument("join key column out of range for " +
                                       member.table);
      }
      const minihouse::Column& column = table->column(member.column);
      std::vector<cardest::NdvSketch> sketches(
          group.buckets.num_buckets(), cardest::NdvSketch(hll_precision));
      const int64_t rows = column.num_rows();
      for (int64_t i = 0; i < rows; ++i) {
        const int64_t value = column.NumericAt(i);
        sketches[group.buckets.BucketOf(value)].Add(value);
      }
      state.bucket_hlls_.insert_or_assign({member.table, member.column},
                                          std::move(sketches));
    }
  }
  return state;
}

Result<bool> FjMaintenanceState::ApplyBatch(const IngestDelta& delta) {
  bool touched = false;
  for (const cardest::FactorJoinModel::KeyGroup& group : model_.groups()) {
    for (const cardest::JoinKeyRef& member : group.members) {
      if (member.table != delta.table) continue;
      if (member.column < 0 ||
          member.column >= static_cast<int>(delta.columns.size())) {
        return Status::InvalidArgument("ingest delta lacks join key column " +
                                       std::to_string(member.column));
      }
      const ColumnDelta& cd = delta.columns[member.column];
      if (!cd.has_values) continue;
      cardest::BucketStats* stats =
          model_.FindMutableStats(member.table, member.column);
      auto hlls = bucket_hlls_.find({member.table, member.column});
      if (stats == nullptr || hlls == bucket_hlls_.end()) {
        return Status::Internal("FactorJoin stats missing for " +
                                member.table + "." +
                                std::to_string(member.column));
      }
      const int nb = group.buckets.num_buckets();
      // One pass over the batch's (value, frequency) pairs, adding each value
      // straight into the persistent per-bucket sketch (register-wise max, so
      // this is identical to building a batch sketch and merging it — without
      // allocating nb transient sketches per batch). A bucket only pays the
      // O(2^p) Estimate() rescan when one of its registers actually grew;
      // on the steady-state path most values are re-sightings and the cached
      // distinct count stands.
      std::vector<double> batch_count(nb, 0.0);
      std::vector<double> batch_max_freq(nb, 0.0);
      std::vector<uint8_t> sketch_grew(nb, 0);
      std::vector<cardest::NdvSketch>& sketches = hlls->second;
      for (const auto& [value, freq] : cd.value_counts) {
        const int b = group.buckets.BucketOf(value);
        batch_count[b] += static_cast<double>(freq);
        batch_max_freq[b] =
            std::max(batch_max_freq[b], static_cast<double>(freq));
        if (sketches[b].Add(value)) sketch_grew[b] = 1;
      }
      for (int b = 0; b < nb; ++b) {
        if (batch_count[b] == 0.0) continue;
        stats->count[b] += batch_count[b];
        // Summing the two maxima upper-bounds the merged maximum frequency,
        // so kUpperBound never turns into an underestimate.
        stats->max_freq[b] += batch_max_freq[b];
        if (sketch_grew[b] != 0) {
          stats->distinct[b] = std::max(stats->distinct[b],
                                        sketches[b].Estimate());
        }
        stats->distinct[b] = std::min(stats->count[b], stats->distinct[b]);
      }
      touched = true;
    }
  }
  return touched;
}

void FjMaintenanceState::AdoptModel(const cardest::FactorJoinModel& model) {
  model_ = model;
}

std::string FjMaintenanceState::SerializeModel() const {
  BufferWriter writer;
  model_.Serialize(&writer);
  return writer.Release();
}

}  // namespace bytecard::incremental
