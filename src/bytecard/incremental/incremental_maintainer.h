#ifndef BYTECARD_BYTECARD_INCREMENTAL_INCREMENTAL_MAINTAINER_H_
#define BYTECARD_BYTECARD_INCREMENTAL_INCREMENTAL_MAINTAINER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bytecard/data_ingestor.h"
#include "bytecard/incremental/bn_delta.h"
#include "bytecard/incremental/fj_delta.h"
#include "bytecard/snapshot.h"
#include "cardest/ndv/hll.h"
#include "common/status.h"
#include "minihouse/database.h"

namespace bytecard {
class ByteCard;
}  // namespace bytecard

namespace bytecard::incremental {

struct IncrementalOptions {
  // Must match the alpha the BN models were trained with (BnTrainOptions
  // default); the count pages renormalize with exactly this value.
  double laplace_alpha = 0.02;
  int hll_precision = 12;
  bool update_bn = true;
  bool update_factorjoin = true;
  bool update_ndv = true;
  // Also publish each delta-updated model through the ModelForge artifact
  // store (and commit the loader's mark), so a restart reloads the delta
  // state instead of the stale trained artifact. Off by default: the common
  // path publishes successor snapshots in memory only.
  bool publish_artifacts = false;
};

struct IncrementalStats {
  int64_t batches_applied = 0;
  int64_t rows_absorbed = 0;
  int64_t bn_updates = 0;
  int64_t fj_updates = 0;
  int64_t ndv_merges = 0;
  int64_t snapshots_published = 0;
  // Count pages dropped because a full retrain replaced their base model.
  int64_t resets = 0;
  double maintenance_seconds = 0.0;
};

// The model updates one ingest delta produced, ready for the facade to load
// into a SnapshotBuilder. Everything goes through the same validated
// admission paths a trained artifact takes; BN models ride in memory
// (SnapshotBuilder::AdoptBn — one delta publish per batch makes the
// serialize -> deserialize round trip pure overhead), the FactorJoin model
// as bytes (its successor rebuild path is byte-based anyway).
struct IncrementalUpdates {
  std::vector<std::pair<std::string, cardest::BayesNetModel>> bn;
  bool has_fj = false;
  std::string fj_bytes;
  // Immutable copy of the merged NDV catalog; null when no sketch changed.
  std::shared_ptr<const cardest::NdvSketchCatalog> ndv;
};

// The incremental model-maintenance subsystem (DESIGN.md §13): consumes
// IngestDeltas from the DataIngestor's consumption log and keeps every model
// family current between full retrains —
//   * BN COUNT models via copy-on-write CPD count pages (BnCountPage),
//   * the FactorJoin model via per-bucket histogram merges
//     (FjMaintenanceState),
//   * unfiltered column NDV via mergeable HyperLogLog sketches.
// Each absorbed batch becomes a cheap successor snapshot stamped with the
// batch's ingest epoch, published through the exact SnapshotBuilder path full
// retrains use. The maintainer never decides model quality: the
// OnlineDriftDetector demotes a table whose delta-updated model degrades, and
// the normal demote -> retrain -> RefreshModels loop resets this state
// (OnModelReplaced).
//
// Threading: OnIngest runs on the ingest thread after the table's write
// latch is released; it re-enters the facade (ApplyIngestDelta), which
// serializes on lifecycle_mu_ and calls back into ComputeUpdates /
// RecordPublish. Internal state is guarded by mu_ so stats() and
// OnModelReplaced may race OnIngest safely.
class IncrementalMaintainer : public IngestObserver {
 public:
  // `bytecard` is not owned and must outlive the maintainer.
  IncrementalMaintainer(ByteCard* bytecard, IncrementalOptions options);

  // Seeds the FactorJoin maintenance copy and the per-column NDV sketches
  // with one pass over `db` (enable-time cost; batches merge from then on).
  // `snapshot` is the currently-published serving state.
  Status Seed(const minihouse::Database& db,
              const EstimatorSnapshot& snapshot);

  // IngestObserver: routes the batch's delta into the facade's delta-publish
  // path. Failures are logged, never thrown into the ingest path — the batch
  // itself already landed; the drift detector catches a stale model.
  void OnIngest(const IngestionEvent& event) override;

  // Applies one delta to the maintenance state and returns the serialized
  // model updates to publish. Called by ByteCard::ApplyIngestDelta under
  // lifecycle_mu_.
  Result<IncrementalUpdates> ComputeUpdates(const IngestDelta& delta,
                                            const EstimatorSnapshot& snapshot);

  // Lifecycle callback: a full-retrain artifact of (kind, name) was just
  // published. BN -> drop that table's count page (the next delta re-unfolds
  // from the fresh model); FactorJoin -> adopt the new stats (the distinct
  // sketches are kept — they track the data, not the model generation).
  void OnModelReplaced(const std::string& kind, const std::string& name,
                       const EstimatorSnapshot& snapshot);

  // Accounting for one completed delta publish.
  void RecordPublish(double seconds, const IngestDelta& delta);

  IncrementalStats stats() const;
  const IncrementalOptions& options() const { return options_; }

 private:
  ByteCard* bytecard_;
  const IncrementalOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, BnCountPage> pages_;
  std::optional<FjMaintenanceState> fj_;
  cardest::NdvSketchCatalog ndv_;
  IncrementalStats stats_;
};

}  // namespace bytecard::incremental

#endif  // BYTECARD_BYTECARD_INCREMENTAL_INCREMENTAL_MAINTAINER_H_
