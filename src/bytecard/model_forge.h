#ifndef BYTECARD_BYTECARD_MODEL_FORGE_H_
#define BYTECARD_BYTECARD_MODEL_FORGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cardest/bayes/bayes_net.h"
#include "cardest/factorjoin/factor_join.h"
#include "cardest/ndv/rbx.h"
#include "common/status.h"
#include "minihouse/database.h"

namespace bytecard {

// Descriptor of one trained model artifact in the forge's storage directory.
struct ModelArtifact {
  std::string kind;    // "bn", "factorjoin", "rbx"
  std::string name;    // table name, or "global"
  int64_t timestamp = 0;
  std::string path;
  int64_t size_bytes = 0;
  double train_seconds = 0.0;
};

// The ModelForge Service (paper §4.3): a standalone training service that
// samples data, trains models, and publishes timestamped artifacts to a
// storage directory for the Model Loader to pick up. Training runs here so
// that online query processing never pays its cost; in ByteDance it is a
// Python service over cloud storage — here the same lifecycle runs in-process
// over a local directory.
class ModelForgeService {
 public:
  // `storage_dir` is created if absent.
  explicit ModelForgeService(std::string storage_dir);

  const std::string& storage_dir() const { return storage_dir_; }

  // Routine COUNT-model training: Chow-Liu structure learning + smoothed-ML
  // parameter fitting for one table.
  Result<ModelArtifact> TrainTableBn(const minihouse::Table& table,
                                     const cardest::BnTrainOptions& options);

  // Shard-specialized training (paper §4.3): partitions the table's rows by
  // hash(shard key column) and trains one BN per shard, published as
  // "<table>@shard<k>".
  Result<std::vector<ModelArtifact>> TrainShardedBn(
      const minihouse::Table& table, int shard_column, int num_shards,
      const cardest::BnTrainOptions& options);

  // FactorJoin bucket construction over the catalog's join patterns.
  Result<ModelArtifact> TrainFactorJoin(
      const minihouse::Database& db,
      const std::vector<std::vector<cardest::JoinKeyRef>>& key_groups,
      int num_buckets);

  // One-off workload-independent RBX training.
  Result<ModelArtifact> TrainRbx(const cardest::RbxTrainOptions& options);

  // Calibration fine-tuning from the checkpoint in `artifact`: reduced LR,
  // asymmetric penalty, high-NDV augmentation (paper §5.2.2). Publishes a
  // new artifact.
  Result<ModelArtifact> FineTuneRbx(
      const ModelArtifact& artifact,
      const std::vector<cardest::NdvTrainingExample>& problematic,
      uint64_t seed);

  // Publishes pre-serialized model bytes as a timestamped artifact — the
  // incremental maintainer's path for delta-updated models, so a restarted
  // loader reloads the delta state instead of the stale trained artifact.
  Result<ModelArtifact> PublishArtifact(const std::string& kind,
                                        const std::string& name,
                                        const std::string& bytes,
                                        double train_seconds = 0.0) {
    return Publish(kind, name, bytes, train_seconds);
  }

  // Artifacts currently in the store, newest first within each (kind, name).
  Result<std::vector<ModelArtifact>> ListArtifacts() const;

  // Data lifecycle: drops artifacts superseded by >= `keep` newer versions
  // of the same (kind, name). Returns how many files were removed.
  Result<int> PurgeSuperseded(int keep);

 private:
  Result<ModelArtifact> Publish(const std::string& kind,
                                const std::string& name,
                                const std::string& bytes,
                                double train_seconds);

  std::string storage_dir_;
  int64_t clock_ = 0;  // monotonic artifact timestamp source
};

// Reads an artifact's bytes from disk.
Result<std::string> ReadArtifactBytes(const std::string& path);

}  // namespace bytecard

#endif  // BYTECARD_BYTECARD_MODEL_FORGE_H_
