#include "bytecard/data_ingestor.h"

#include <memory>
#include <shared_mutex>
#include <utility>

#include "common/logging.h"

namespace bytecard {

Result<IngestionEvent> DataIngestor::AppendResampled(
    const std::string& table_name, int64_t rows, int drift_column,
    int64_t drift_offset, Rng* rng) {
  BC_ASSIGN_OR_RETURN(minihouse::Table * table,
                      db_->FindMutableTable(table_name));
  const int64_t existing = table->num_rows();
  if (existing == 0) {
    return Status::InvalidArgument("cannot resample from empty table '" +
                                   table_name + "'");
  }
  if (rows <= 0) {
    return Status::InvalidArgument("batch must add at least one row");
  }

  // Column-major copy of the batch's numeric codes, collected while
  // appending — the IngestDelta extraction costs one pass over the batch,
  // never over the table.
  std::vector<std::vector<int64_t>> batch_codes(table->num_columns());
  for (int c = 0; c < table->num_columns(); ++c) {
    if (table->column(c).type() != minihouse::DataType::kArray) {
      batch_codes[c].reserve(rows);
    }
  }

  {
    // Exclusive append window: queries and trainers hold the shared side of
    // the latch (TableReadGuard), so blocks and zone maps never change under
    // a running scan. Released before the observers fire — observers take
    // lifecycle locks whose holders in turn take shared table latches, and
    // holding the exclusive latch across that callback would invert the
    // lock order.
    std::unique_lock<std::shared_mutex> append_latch(table->latch());
    for (int64_t i = 0; i < rows; ++i) {
      const int64_t src = static_cast<int64_t>(rng->Uniform(existing));
      for (int c = 0; c < table->num_columns(); ++c) {
        minihouse::Column* column = table->mutable_column(c);
        if (column->type() == minihouse::DataType::kArray) {
          column->AppendNumeric(0);  // appends an empty array
          continue;
        }
        int64_t value = column->NumericAt(src);
        if (c == drift_column) value += drift_offset;
        if (column->type() == minihouse::DataType::kFloat64) {
          // Shift in value space, not code space.
          const double d = column->DoubleAt(src) +
                           (c == drift_column
                                ? static_cast<double>(drift_offset)
                                : 0.0);
          value = minihouse::Column::OrderedCodeOf(d);
        }
        column->AppendNumeric(value);
        batch_codes[c].push_back(value);
      }
    }
    BC_RETURN_IF_ERROR(table->Seal());
  }

  IngestionEvent event;
  event.table = table_name;
  event.rows_added = rows;
  event.total_rows = table->num_rows();
  event.offset = ++next_offset_;
  event.delta = std::make_shared<const incremental::IngestDelta>(
      incremental::IngestDelta::Build(table_name,
                                      static_cast<uint64_t>(event.offset),
                                      /*first_row=*/existing,
                                      event.total_rows,
                                      std::move(batch_codes)));
  // The consumption log keeps only the lightweight event, not the delta.
  IngestionEvent logged = event;
  logged.delta.reset();
  events_.push_back(std::move(logged));
  for (IngestObserver* observer : observers_) observer->OnIngest(event);
  return event;
}

Result<IngestionEvent> DataIngestor::IngestStationaryBatch(
    const std::string& table, int64_t rows, Rng* rng) {
  return AppendResampled(table, rows, /*drift_column=*/-1,
                         /*drift_offset=*/0, rng);
}

Result<IngestionEvent> DataIngestor::IngestDriftedBatch(
    const std::string& table, int64_t rows, int drift_column,
    int64_t drift_offset, Rng* rng) {
  if (drift_column < 0) {
    return Status::InvalidArgument("drift column must be valid");
  }
  return AppendResampled(table, rows, drift_column, drift_offset, rng);
}

int64_t DataIngestor::PendingRows(const std::string& table) const {
  int64_t pending = 0;
  auto watermark = trained_watermark_.find(table);
  const int64_t mark =
      watermark == trained_watermark_.end() ? 0 : watermark->second;
  for (const IngestionEvent& event : events_) {
    if (event.table == table && event.offset > mark) {
      pending += event.rows_added;
    }
  }
  return pending;
}

void DataIngestor::MarkTrained(const std::string& table) {
  trained_watermark_[table] = next_offset_;
}

}  // namespace bytecard
