#include "bytecard/model_forge.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace bytecard {

namespace fs = std::filesystem;

namespace {

// Artifact filename: <kind>.<name>.<timestamp>.model — name may contain '@'
// (shard suffix) but not '.' or '/'.
std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '/') c = '_';
  }
  return out;
}

}  // namespace

Result<std::string> ReadArtifactBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open artifact '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

ModelForgeService::ModelForgeService(std::string storage_dir)
    : storage_dir_(std::move(storage_dir)) {
  std::error_code ec;
  fs::create_directories(storage_dir_, ec);
  // Resume the logical clock past any existing artifacts so that restarted
  // services keep publishing strictly newer timestamps.
  if (auto artifacts = ListArtifacts(); artifacts.ok()) {
    for (const ModelArtifact& a : artifacts.value()) {
      clock_ = std::max(clock_, a.timestamp);
    }
  }
}

Result<ModelArtifact> ModelForgeService::Publish(const std::string& kind,
                                                 const std::string& name,
                                                 const std::string& bytes,
                                                 double train_seconds) {
  ModelArtifact artifact;
  artifact.kind = kind;
  artifact.name = name;
  artifact.timestamp = ++clock_;
  artifact.size_bytes = static_cast<int64_t>(bytes.size());
  artifact.train_seconds = train_seconds;
  artifact.path = storage_dir_ + "/" + kind + "." + SanitizeName(name) + "." +
                  std::to_string(artifact.timestamp) + ".model";

  std::ofstream out(artifact.path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot write artifact '" + artifact.path + "'");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    return Status::Internal("short write for artifact '" + artifact.path +
                            "'");
  }
  return artifact;
}

Result<ModelArtifact> ModelForgeService::TrainTableBn(
    const minihouse::Table& table, const cardest::BnTrainOptions& options) {
  Stopwatch timer;
  BC_ASSIGN_OR_RETURN(cardest::BayesNetModel model,
                      cardest::BayesNetModel::Train(table, options));
  BufferWriter writer;
  model.Serialize(&writer);
  return Publish("bn", table.name(), writer.buffer(),
                 timer.ElapsedSeconds());
}

Result<std::vector<ModelArtifact>> ModelForgeService::TrainShardedBn(
    const minihouse::Table& table, int shard_column, int num_shards,
    const cardest::BnTrainOptions& options) {
  if (shard_column < 0 || shard_column >= table.num_columns()) {
    return Status::InvalidArgument("shard column out of range");
  }
  if (num_shards <= 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }

  // Segment rows by hash of the shard key, then materialize per-shard tables
  // and run the routine training on each.
  const minihouse::Column& key = table.column(shard_column);
  std::vector<std::vector<int64_t>> shard_rows(num_shards);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    uint64_t h = static_cast<uint64_t>(key.NumericAt(r));
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    shard_rows[h % static_cast<uint64_t>(num_shards)].push_back(r);
  }

  std::vector<ModelArtifact> artifacts;
  for (int s = 0; s < num_shards; ++s) {
    if (shard_rows[s].empty()) continue;
    minihouse::Table shard(table.name() + "@shard" + std::to_string(s),
                           table.schema());
    for (int c = 0; c < table.num_columns(); ++c) {
      const minihouse::Column& src = table.column(c);
      minihouse::Column* dst = shard.mutable_column(c);
      if (src.type() == minihouse::DataType::kArray) {
        for (size_t i = 0; i < shard_rows[s].size(); ++i) dst->AppendArray({});
        continue;
      }
      for (int64_t r : shard_rows[s]) {
        if (src.type() == minihouse::DataType::kFloat64) {
          dst->AppendDouble(src.DoubleAt(r));
        } else {
          dst->AppendInt(src.NumericAt(r));
        }
      }
    }
    BC_RETURN_IF_ERROR(shard.Seal());
    BC_ASSIGN_OR_RETURN(ModelArtifact artifact,
                        TrainTableBn(shard, options));
    artifacts.push_back(std::move(artifact));
  }
  return artifacts;
}

Result<ModelArtifact> ModelForgeService::TrainFactorJoin(
    const minihouse::Database& db,
    const std::vector<std::vector<cardest::JoinKeyRef>>& key_groups,
    int num_buckets) {
  Stopwatch timer;
  BC_ASSIGN_OR_RETURN(cardest::FactorJoinModel model,
                      cardest::FactorJoinModel::Train(db, key_groups,
                                                      num_buckets));
  BufferWriter writer;
  model.Serialize(&writer);
  return Publish("factorjoin", "global", writer.buffer(),
                 timer.ElapsedSeconds());
}

Result<ModelArtifact> ModelForgeService::TrainRbx(
    const cardest::RbxTrainOptions& options) {
  Stopwatch timer;
  BC_ASSIGN_OR_RETURN(cardest::RbxModel model,
                      cardest::RbxModel::TrainWorkloadIndependent(options));
  BufferWriter writer;
  model.Serialize(&writer);
  return Publish("rbx", "global", writer.buffer(), timer.ElapsedSeconds());
}

Result<ModelArtifact> ModelForgeService::FineTuneRbx(
    const ModelArtifact& artifact,
    const std::vector<cardest::NdvTrainingExample>& problematic,
    uint64_t seed) {
  BC_ASSIGN_OR_RETURN(std::string bytes, ReadArtifactBytes(artifact.path));
  BufferReader reader(bytes);
  BC_ASSIGN_OR_RETURN(cardest::RbxModel model,
                      cardest::RbxModel::Deserialize(&reader));
  Stopwatch timer;
  BC_RETURN_IF_ERROR(model.FineTune(problematic, seed));
  BufferWriter writer;
  model.Serialize(&writer);
  return Publish("rbx", artifact.name, writer.buffer(),
                 timer.ElapsedSeconds());
}

Result<std::vector<ModelArtifact>> ModelForgeService::ListArtifacts() const {
  std::vector<ModelArtifact> artifacts;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(storage_dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string filename = entry.path().filename().string();
    // Parse <kind>.<name>.<timestamp>.model
    if (filename.size() < 7 ||
        filename.substr(filename.size() - 6) != ".model") {
      continue;
    }
    const std::string stem = filename.substr(0, filename.size() - 6);
    const size_t first_dot = stem.find('.');
    const size_t last_dot = stem.rfind('.');
    if (first_dot == std::string::npos || last_dot <= first_dot) continue;
    ModelArtifact artifact;
    artifact.kind = stem.substr(0, first_dot);
    artifact.name = stem.substr(first_dot + 1, last_dot - first_dot - 1);
    artifact.timestamp =
        std::strtoll(stem.substr(last_dot + 1).c_str(), nullptr, 10);
    artifact.path = entry.path().string();
    artifact.size_bytes = static_cast<int64_t>(entry.file_size(ec));
    artifacts.push_back(std::move(artifact));
  }
  if (ec) return Status::Internal("cannot list artifacts: " + ec.message());
  std::sort(artifacts.begin(), artifacts.end(),
            [](const ModelArtifact& a, const ModelArtifact& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.name != b.name) return a.name < b.name;
              return a.timestamp > b.timestamp;
            });
  return artifacts;
}

Result<int> ModelForgeService::PurgeSuperseded(int keep) {
  if (keep < 1) return Status::InvalidArgument("keep must be >= 1");
  BC_ASSIGN_OR_RETURN(std::vector<ModelArtifact> artifacts, ListArtifacts());
  std::map<std::pair<std::string, std::string>, int> seen;
  int removed = 0;
  for (const ModelArtifact& artifact : artifacts) {
    const int rank = ++seen[{artifact.kind, artifact.name}];
    if (rank <= keep) continue;
    std::error_code ec;
    if (fs::remove(artifact.path, ec) && !ec) ++removed;
  }
  return removed;
}

}  // namespace bytecard
