#ifndef BYTECARD_BYTECARD_COST_MODEL_H_
#define BYTECARD_BYTECARD_COST_MODEL_H_

#include <string>
#include <vector>

#include "bytecard/inference_engine.h"
#include "cardest/ndv/mlp.h"
#include "common/serde.h"
#include "common/status.h"
#include "minihouse/executor.h"
#include "minihouse/optimizer.h"
#include "minihouse/query.h"

namespace bytecard {

// The learning-based cost model the paper's "Future Directions" section
// commits to (§7): a query-driven regressor over runtime traces, deployed
// through the same Inference Engine abstraction as the CardEst models so the
// kernel-side integration story (load -> validate -> initContext ->
// featurize -> estimate) is identical.
//
// Featurization combines plan shape with the cardinality estimates already
// available at planning time — exactly the "runtime traces and query plan
// statistics" recipe the paper describes for XGBoost/Elastic-Net cost
// models, realized with this repository's MLP.

// One training observation: what the planner saw, and what execution cost.
struct CostTrace {
  std::vector<double> features;
  double exec_ms = 0.0;
};

inline constexpr int kCostFeatureDim = 12;

// Builds the plan-time feature vector for a (query, plan) pair. `estimator`
// supplies the same cardinality estimates the optimizer used.
std::vector<double> BuildCostFeatures(
    const minihouse::BoundQuery& query, const minihouse::PhysicalPlan& plan,
    minihouse::CardinalityEstimator* estimator);

// The cost model itself: wraps a small MLP predicting log(1 + exec_ms).
class LearnedCostModel {
 public:
  struct TrainOptions {
    int epochs = 200;
    double learning_rate = 2e-3;
    uint64_t seed = 23;
  };

  LearnedCostModel() = default;

  static Result<LearnedCostModel> Train(const std::vector<CostTrace>& traces,
                                        const TrainOptions& options);

  // Predicted execution milliseconds for the featurized plan.
  double PredictMs(const std::vector<double>& features) const;

  Status Validate() const { return network_.ValidateWeights(); }

  void Serialize(BufferWriter* writer) const;
  static Result<LearnedCostModel> Deserialize(BufferReader* reader);

 private:
  cardest::Mlp network_;
};

// Inference-Engine adapter, proving the abstraction carries non-CardEst
// models as the paper intends: LoadModel/Validate/InitContext plug into the
// same Model Loader / Validator machinery.
class CostModelEngine : public CardEstInferenceEngine {
 public:
  CostModelEngine() = default;

  std::string name() const override { return "learned_cost"; }
  Status LoadModel(const std::string& artifact_bytes) override;
  Status Validate() const override;
  Status InitContext() override;
  Result<FeatureVector> FeaturizeAst(
      const minihouse::BoundQuery& ast) const override;
  Result<double> Estimate(const FeatureVector& features) const override;
  int64_t ModelSizeBytes() const override;

  // Plan-aware featurization (the AST alone is not enough for cost).
  FeatureVector FeaturizePlan(
      const minihouse::BoundQuery& query, const minihouse::PhysicalPlan& plan,
      minihouse::CardinalityEstimator* estimator) const;

  const LearnedCostModel& model() const { return model_; }

 private:
  LearnedCostModel model_;
  bool context_ready_ = false;
};

// Trace collection helper: plans and executes every query, recording
// (features, measured ms) pairs — the "runtime traces in system tables" the
// paper's warehouse already gathers.
Result<std::vector<CostTrace>> CollectCostTraces(
    const std::vector<minihouse::BoundQuery>& queries,
    const minihouse::Optimizer& optimizer,
    minihouse::CardinalityEstimator* estimator);

}  // namespace bytecard

#endif  // BYTECARD_BYTECARD_COST_MODEL_H_
