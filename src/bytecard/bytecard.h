#ifndef BYTECARD_BYTECARD_BYTECARD_H_
#define BYTECARD_BYTECARD_BYTECARD_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bytecard/feedback/feedback_manager.h"
#include "bytecard/incremental/incremental_maintainer.h"
#include "bytecard/inference_engine.h"
#include "bytecard/model_forge.h"
#include "bytecard/model_loader.h"
#include "bytecard/model_monitor.h"
#include "bytecard/model_validator.h"
#include "bytecard/routing/route_miner.h"
#include "bytecard/routing/routing_table.h"
#include "bytecard/snapshot.h"
#include "cardest/ndv/rbx.h"
#include "common/snapshot.h"
#include "common/status.h"
#include "minihouse/database.h"
#include "minihouse/optimizer.h"
#include "minihouse/scheduler.h"
#include "stats/sampler.h"
#include "stats/traditional_estimator.h"

namespace bytecard {

// Aggregate training cost/size accounting (feeds Tables 3 and 6).
struct ByteCardTrainingStats {
  double bn_seconds = 0.0;
  double factorjoin_seconds = 0.0;
  double rbx_seconds = 0.0;
  int64_t bn_bytes = 0;
  int64_t factorjoin_bytes = 0;
  int64_t rbx_bytes = 0;
  std::vector<ModelArtifact> artifacts;

  double total_seconds() const {
    return bn_seconds + factorjoin_seconds + rbx_seconds;
  }
  int64_t total_bytes() const {
    return bn_bytes + factorjoin_bytes + rbx_bytes;
  }
};

// The ByteCard framework facade, structured as a thin router over an
// atomically-swappable EstimatorSnapshot (see snapshot.h). The snapshot
// bundles everything the read path needs — per-table BN engines + contexts,
// the FactorJoin engine, the RBX engine, RBX samples, model health flags,
// and the traditional fallback — into one immutable unit. Estimation
// acquires the current snapshot (lock-free) and serves from it; model
// lifecycle writers (RefreshModels, RetrainTable pickup, monitor demotion)
// build a successor snapshot off the serving path and publish it with a
// single atomic store, so they are safe to run concurrently with estimation
// from any number of query threads. Queries that pinned the old snapshot
// (via PinSnapshot / EstimationContext) drain naturally.
//
// When the Model Monitor marks a table's model unhealthy, estimates for that
// table transparently fall back to the traditional sketch estimator, exactly
// as §4.4.2 prescribes.
class ByteCard : public minihouse::CardinalityEstimator {
 public:
  struct Options {
    int bn_max_bins = 64;
    int64_t bn_max_train_rows = 200000;
    int join_buckets = 200;         // the paper setup: 200 equi-height buckets
    double sample_rate = 0.05;      // RBX featurization sample
    int64_t sample_max_rows = 50000;
    cardest::RbxTrainOptions rbx;
    ModelMonitor::Options monitor;
    bool run_monitor = true;
    bool build_fallback_sketches = true;
    // Runtime-feedback subsystem: capture estimate-vs-actual per executed
    // query, serve repeated subplans from the feedback cache, and detect
    // per-table drift from real traffic (no synthetic probes). Off by
    // default; EnableFeedback() turns it on after Bootstrap too.
    bool enable_feedback = false;
    feedback::FeedbackOptions feedback;
    // Reuse a pre-trained workload-independent RBX artifact instead of
    // training (one offline session serves every dataset — paper §4.3).
    std::string pretrained_rbx_path;
    uint64_t seed = 1234;
  };

  // Runs the full production lifecycle against `db`:
  //   Model Preprocessor (column selection + join patterns from
  //   `workload_hint`) -> ModelForge training -> artifact store under
  //   `storage_dir` -> Model Loader pickup -> Validator admission ->
  //   InitContext -> Model Monitor probing -> snapshot v1 published.
  static Result<std::unique_ptr<ByteCard>> Bootstrap(
      const minihouse::Database& db,
      const std::vector<minihouse::BoundQuery>& workload_hint,
      const std::string& storage_dir, const Options& options);

  // --- CardinalityEstimator ------------------------------------------------
  std::string Name() const override { return "bytecard"; }
  // Canonical entry point: acquires the current snapshot and dispatches the
  // request through it. (Per-query work should pin once via PinSnapshot /
  // EstimationContext instead of paying an acquire per call.)
  double Estimate(const cardest::CardEstRequest& request,
                  cardest::InferenceSession* session) override;
  double EstimateSelectivity(const minihouse::Table& table,
                             const minihouse::Conjunction& filters) override;
  double EstimateJoinCardinality(const minihouse::BoundQuery& query,
                                 const std::vector<int>& subset) override;
  double EstimateGroupNdv(const minihouse::BoundQuery& query) override;

  // Pins the current snapshot and returns a per-query view over it: every
  // estimate through the view is answered by one model version, regardless
  // of concurrent RefreshModels/demotions. The optimizer does this once per
  // plan via EstimationContext.
  std::shared_ptr<minihouse::CardinalityEstimator> PinSnapshot() override;
  uint64_t SnapshotVersion() const override;

  // --- Model lifecycle -------------------------------------------------------
  // One Model Loader cycle: polls the artifact store, builds a successor
  // snapshot containing every newer artifact that passes validation, and
  // publishes it atomically. Candidates that fail to load/validate are
  // skipped (and retried on the next cycle — their high-water marks only
  // advance on a successful publish). Safe to call concurrently with
  // estimation; concurrent lifecycle writers serialize on an internal
  // mutex. Returns how many models were applied.
  Result<int> RefreshModels();

  // Routine retraining of one table's COUNT model via the ModelForge
  // Service, publishing a fresh artifact (pick it up with RefreshModels).
  // Invoked when the Data Ingestor reports enough new data or the Monitor
  // flags the current model. Safe to call concurrently with estimation.
  Status RetrainTable(const minihouse::Table& table);

  // Re-probes one table's model, updates its health flag, and publishes a
  // successor snapshot if the verdict changed; returns the report (paper
  // §4.4.2). Safe to call concurrently with estimation.
  Result<MonitorReport> ProbeTable(const minihouse::Table& table);

  // Monitor demotion/promotion: overrides one table's health flag and
  // publishes a successor snapshot. Safe to call concurrently with
  // estimation.
  void SetTableHealth(const std::string& table, bool healthy);

  // --- Runtime feedback ------------------------------------------------------
  // Turns the feedback subsystem on (idempotent): subsequent PinSnapshot
  // views expose the manager as their QueryFeedbackHook, so the optimizer
  // serves repeated subplans from the cache and the executor reports
  // estimate-vs-actual observations into the log and drift detector.
  void EnableFeedback();

  // The feedback subsystem, or null while disabled. Also the IngestObserver
  // to register on a DataIngestor so batch ingest invalidates cached actuals.
  feedback::FeedbackManager* feedback_manager() {
    return feedback_.load(std::memory_order_acquire);
  }

  minihouse::QueryFeedbackHook* feedback_hook() const override {
    return feedback_.load(std::memory_order_acquire);
  }

  // One action the drift loop took (or declined) for a drifted table.
  struct FeedbackAction {
    feedback::DriftReport report;
    bool demoted = false;          // published a successor with health=false
    bool retrain_started = false;  // forged a replacement artifact
  };

  // The drift-driven health loop: reads the detector's verdicts and, for
  // every drifted table whose model is live and healthy, demotes it to the
  // traditional fallback (SetTableHealth(false) — same publish path the
  // synthetic Model Monitor uses) and, when `db` is given, immediately
  // forges a replacement model (pick it up with RefreshModels). Returns one
  // action per drifted table. Thread-safe; call periodically or after
  // workload bursts.
  std::vector<FeedbackAction> ProcessFeedback(
      const minihouse::Database* db = nullptr);

  // --- Adaptive routing ------------------------------------------------------
  // Mines a routing table from the feedback log's recorded trace (replaying
  // each observation against the current snapshot through every estimator
  // family — see routing/route_miner.h) and publishes a successor snapshot
  // carrying it. Subsequent estimates resolve their route class first and
  // dispatch to the mined family; classes without a route (and every class,
  // when the table is empty or its mined epoch is stale) take the general
  // path unchanged. Requires EnableFeedback and a published snapshot.
  // Cached actuals stay valid across this publish — only the dispatch
  // policy changes, not the models — so the feedback cache is NOT flushed.
  // Thread-safe (lifecycle mutex); safe under concurrent estimation.
  Result<routing::RouteMinerReport> MineRoutes(
      const minihouse::Database& db, routing::RouteMinerOptions options = {});

  // The live snapshot's routing table (null before MineRoutes / after the
  // table is cleared). The epoch-staleness rule lives in
  // EstimatorSnapshot::routing_live().
  std::shared_ptr<const routing::RoutingTable> routing_table() const {
    std::shared_ptr<const EstimatorSnapshot> snap = snapshot_.Acquire();
    return snap == nullptr ? nullptr : snap->routing_table_shared();
  }

  // --- Incremental maintenance ----------------------------------------------
  // Turns the incremental model-maintenance subsystem on (idempotent):
  // seeds the FactorJoin maintenance copy and the per-column NDV sketches
  // from `db`, then registers the maintainer wherever the caller taps it
  // into a DataIngestor (incremental_maintainer() is the IngestObserver).
  // From then on every ingested batch delta-updates the BN/FactorJoin/NDV
  // models and publishes a successor snapshot stamped with the batch's
  // ingest epoch. Requires a published snapshot (Bootstrap first).
  Status EnableIncrementalMaintenance(const minihouse::Database& db,
                                      incremental::IncrementalOptions options =
                                          {});

  // Applies one ingest delta: computes the per-family model updates, builds
  // a successor snapshot through the same validated Load* paths a trained
  // artifact takes, stamps the batch's ingest epoch, and publishes it.
  // Returns the published snapshot version. Serializes on the lifecycle
  // mutex; safe to call concurrently with estimation and other lifecycle
  // writers. Never call while holding a table latch (the maintainer's
  // OnIngest fires after the ingestor releases it).
  Result<uint64_t> ApplyIngestDelta(const incremental::IngestDelta& delta);

  // The maintainer, or null until EnableIncrementalMaintenance. Register it
  // on a DataIngestor via AddObserver to close the ingest -> maintain loop.
  incremental::IncrementalMaintainer* incremental_maintainer() {
    return incremental_.get();
  }

  // --- Concurrent serving ----------------------------------------------------
  // Brings up the query scheduler front-end over this estimator: subsequent
  // Submit/Wait calls plan each query against a pinned snapshot and execute
  // it on the two-lane pool, with admission driven by the query's own
  // estimated intermediate cardinalities (see minihouse/scheduler.h). Call
  // once, before serving threads start; replaces (after draining) any
  // previous scheduler. Model lifecycle calls (RefreshModels, RetrainTable,
  // ProcessFeedback) remain safe to run while queries are in flight.
  void StartServing(minihouse::SchedulerOptions options = {});

  // Drains in-flight queries and tears the scheduler down. Call only when no
  // thread is submitting.
  void StopServing();

  // Forwarders to the scheduler (StartServing must have run).
  std::shared_ptr<minihouse::QueryTicket> Submit(
      const minihouse::BoundQuery& query);
  // SQL front door: analyzes `sql` against `db` on the calling thread and
  // submits the bound query. Analyzer errors come back through Wait on the
  // returned ticket (never a null ticket, never a crash).
  std::shared_ptr<minihouse::QueryTicket> Submit(
      const std::string& sql, const minihouse::Database& db);
  Result<minihouse::ExecResult> Wait(
      const std::shared_ptr<minihouse::QueryTicket>& ticket);

  // Null before StartServing / after StopServing.
  minihouse::QueryScheduler* scheduler() { return scheduler_.get(); }

  // OR-query estimation (paper §5.1.2): COUNT of the union of single-table
  // filter conjunctions via the inclusion-exclusion principle. Disjuncts
  // must all reference `table`; the whole disjunction is answered by one
  // pinned snapshot.
  double EstimateCountDisjunction(
      const minihouse::Table& table,
      const std::vector<minihouse::Conjunction>& disjuncts);

  // --- Direct estimation APIs ----------------------------------------------
  // COUNT(*) of a whole (possibly multi-table) query.
  double EstimateCount(const minihouse::BoundQuery& query);

  // COUNT(DISTINCT column) on one table under filters, via the RBX
  // sample-profile path (§5.2.1).
  double EstimateColumnNdv(const minihouse::Table& table, int column,
                           const minihouse::Conjunction& filters);

  // --- Introspection ---------------------------------------------------------
  // The currently-published snapshot (never null after Bootstrap).
  std::shared_ptr<const EstimatorSnapshot> snapshot() const {
    return snapshot_.Acquire();
  }
  const ByteCardTrainingStats& training_stats() const {
    return training_stats_;
  }
  const ModelMonitor& monitor() const { return monitor_; }
  // Test hook for swapping monitor options; health changes made directly on
  // the monitor reach serving only at the next publish (use SetTableHealth
  // or ProbeTable to demote/promote a live model).
  ModelMonitor* mutable_monitor() { return &monitor_; }
  const ModelValidator& validator() const { return validator_; }
  // Convenience views into the *current* snapshot; the references stay valid
  // until the next publish.
  const cardest::FactorJoinModel& factorjoin_model() const;
  const cardest::BnInferenceContext* bn_context(
      const std::string& table) const;
  const RbxNdvEngine& rbx_engine() const;

 private:
  explicit ByteCard(Options options);

  // Per-table training options as Bootstrap derives them (column selection +
  // join-bucket boundaries from `fj_model`), reused verbatim by
  // RetrainTable.
  cardest::BnTrainOptions DeriveBnOptions(
      const minihouse::Table& table,
      const cardest::FactorJoinModel* fj_model) const;

  Options options_;
  std::string storage_dir_;

  // The serving state: readers Acquire(), lifecycle writers Publish().
  common::VersionedHandle<EstimatorSnapshot> snapshot_;

  // Lifecycle state below is touched only under lifecycle_mu_ (Bootstrap
  // runs before the facade is shared, so it needs no lock).
  std::mutex lifecycle_mu_;
  std::unique_ptr<ModelLoader> loader_;
  ModelMonitor monitor_;
  ModelValidator validator_;

  // The runtime-feedback subsystem (null while disabled). Created at most
  // once (under lifecycle_mu_) and never destroyed while the facade lives,
  // so pinned views and query threads may hold the raw pointer across plan +
  // execution; the atomic lets them read it without the lifecycle lock.
  std::unique_ptr<feedback::FeedbackManager> feedback_owned_;
  std::atomic<feedback::FeedbackManager*> feedback_{nullptr};

  // The incremental maintenance subsystem (null until enabled). Created at
  // most once under lifecycle_mu_ and never destroyed while the facade
  // lives, so the ingest thread may hold the observer pointer.
  std::unique_ptr<incremental::IncrementalMaintainer> incremental_;

  // The serving front-end (null until StartServing). Created/destroyed only
  // from quiescent call sites; serving threads reach it through Submit/Wait.
  std::unique_ptr<minihouse::QueryScheduler> scheduler_;

  // Immutable after Bootstrap; shared into every snapshot.
  std::shared_ptr<const std::map<std::string, stats::TableSample>> samples_;
  std::unique_ptr<stats::SketchStatistics> fallback_statistics_;
  std::shared_ptr<stats::SketchEstimator> fallback_;

  ByteCardTrainingStats training_stats_;
};

}  // namespace bytecard

#endif  // BYTECARD_BYTECARD_BYTECARD_H_
