#ifndef BYTECARD_BYTECARD_BYTECARD_H_
#define BYTECARD_BYTECARD_BYTECARD_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bytecard/inference_engine.h"
#include "bytecard/model_forge.h"
#include "bytecard/model_loader.h"
#include "bytecard/model_monitor.h"
#include "bytecard/model_validator.h"
#include "cardest/ndv/rbx.h"
#include "common/status.h"
#include "minihouse/database.h"
#include "minihouse/optimizer.h"
#include "stats/sampler.h"
#include "stats/traditional_estimator.h"

namespace bytecard {

// Aggregate training cost/size accounting (feeds Tables 3 and 6).
struct ByteCardTrainingStats {
  double bn_seconds = 0.0;
  double factorjoin_seconds = 0.0;
  double rbx_seconds = 0.0;
  int64_t bn_bytes = 0;
  int64_t factorjoin_bytes = 0;
  int64_t rbx_bytes = 0;
  std::vector<ModelArtifact> artifacts;

  double total_seconds() const {
    return bn_seconds + factorjoin_seconds + rbx_seconds;
  }
  int64_t total_bytes() const {
    return bn_bytes + factorjoin_bytes + rbx_bytes;
  }
};

// The ByteCard framework facade: owns the per-table BN engines, the
// FactorJoin engine, the RBX engine, per-table samples for NDV
// featurization, and the Monitor/Validator machinery; implements MiniHouse's
// CardinalityEstimator so the optimizer can consume learned estimates for
// materialization, join ordering, and hash-table pre-sizing.
//
// When the Model Monitor marks a table's model unhealthy, estimates for that
// table transparently fall back to the traditional sketch estimator, exactly
// as §4.4.2 prescribes.
class ByteCard : public minihouse::CardinalityEstimator {
 public:
  struct Options {
    int bn_max_bins = 64;
    int64_t bn_max_train_rows = 200000;
    int join_buckets = 200;         // the paper setup: 200 equi-height buckets
    double sample_rate = 0.05;      // RBX featurization sample
    int64_t sample_max_rows = 50000;
    cardest::RbxTrainOptions rbx;
    ModelMonitor::Options monitor;
    bool run_monitor = true;
    bool build_fallback_sketches = true;
    // Reuse a pre-trained workload-independent RBX artifact instead of
    // training (one offline session serves every dataset — paper §4.3).
    std::string pretrained_rbx_path;
    uint64_t seed = 1234;
  };

  // Runs the full production lifecycle against `db`:
  //   Model Preprocessor (column selection + join patterns from
  //   `workload_hint`) -> ModelForge training -> artifact store under
  //   `storage_dir` -> Model Loader pickup -> Validator admission ->
  //   InitContext -> Model Monitor probing.
  static Result<std::unique_ptr<ByteCard>> Bootstrap(
      const minihouse::Database& db,
      const std::vector<minihouse::BoundQuery>& workload_hint,
      const std::string& storage_dir, const Options& options);

  // --- CardinalityEstimator ------------------------------------------------
  std::string Name() const override { return "bytecard"; }
  double EstimateSelectivity(const minihouse::Table& table,
                             const minihouse::Conjunction& filters) override;
  double EstimateJoinCardinality(const minihouse::BoundQuery& query,
                                 const std::vector<int>& subset) override;
  double EstimateGroupNdv(const minihouse::BoundQuery& query) override;

  // --- Model lifecycle -------------------------------------------------------
  // One Model Loader cycle: polls the artifact store and swaps in any model
  // with a newer timestamp (validated + re-contexted before it serves). Not
  // thread-safe with concurrent estimation — call between queries, as the
  // Daemon Manager schedules loading tasks.
  Result<int> RefreshModels();

  // Routine retraining of one table's COUNT model via the ModelForge
  // Service, publishing a fresh artifact (pick it up with RefreshModels).
  // Invoked when the Data Ingestor reports enough new data or the Monitor
  // flags the current model.
  Status RetrainTable(const minihouse::Table& table);

  // Re-probes one table's model and updates its health flag; returns the
  // report (paper §4.4.2).
  Result<MonitorReport> ProbeTable(const minihouse::Table& table);

  // OR-query estimation (paper §5.1.2): COUNT of the union of single-table
  // filter conjunctions via the inclusion-exclusion principle. Disjuncts
  // must all reference `table`.
  double EstimateCountDisjunction(
      const minihouse::Table& table,
      const std::vector<minihouse::Conjunction>& disjuncts);

  // --- Direct estimation APIs ----------------------------------------------
  // COUNT(*) of a whole (possibly multi-table) query.
  double EstimateCount(const minihouse::BoundQuery& query);

  // COUNT(DISTINCT column) on one table under filters, via the RBX
  // sample-profile path (§5.2.1).
  double EstimateColumnNdv(const minihouse::Table& table, int column,
                           const minihouse::Conjunction& filters);

  // --- Introspection ---------------------------------------------------------
  const ByteCardTrainingStats& training_stats() const {
    return training_stats_;
  }
  const ModelMonitor& monitor() const { return monitor_; }
  ModelMonitor* mutable_monitor() { return &monitor_; }
  const ModelValidator& validator() const { return validator_; }
  const cardest::FactorJoinModel& factorjoin_model() const {
    return fj_engine_->model();
  }
  const cardest::BnInferenceContext* bn_context(
      const std::string& table) const;
  const RbxNdvEngine& rbx_engine() const { return *rbx_engine_; }

 private:
  explicit ByteCard(Options options);

  // Per-table training options as Bootstrap derives them (column selection +
  // join-bucket boundaries), reused verbatim by RetrainTable.
  cardest::BnTrainOptions DeriveBnOptions(const minihouse::Table& table) const;

  Options options_;
  std::string storage_dir_;
  std::unique_ptr<ModelLoader> loader_;
  // Engines. Stored behind unique_ptr so internal context pointers stay
  // stable. bn_contexts_ is the registry the FactorJoin engine reads.
  std::map<std::string, std::unique_ptr<BnCountEngine>> bn_engines_;
  std::map<std::string, const cardest::BnInferenceContext*> bn_contexts_;
  std::unique_ptr<FactorJoinEngine> fj_engine_;
  std::unique_ptr<RbxNdvEngine> rbx_engine_;

  // Per-table samples for RBX featurization (the in-memory DataFrame-style
  // sample of §5.2.1).
  std::map<std::string, stats::TableSample> samples_;

  ModelMonitor monitor_;
  ModelValidator validator_;

  // Traditional fallback for unhealthy models.
  std::unique_ptr<stats::SketchStatistics> fallback_statistics_;
  std::unique_ptr<stats::SketchEstimator> fallback_;

  ByteCardTrainingStats training_stats_;
};

}  // namespace bytecard

#endif  // BYTECARD_BYTECARD_BYTECARD_H_
