#ifndef BYTECARD_BYTECARD_DATA_INGESTOR_H_
#define BYTECARD_BYTECARD_DATA_INGESTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bytecard/incremental/ingest_delta.h"
#include "common/rng.h"
#include "common/status.h"
#include "minihouse/database.h"

namespace bytecard {

// One batch-consumption notification, equivalent to what ByteHouse's Data
// Ingestor sends the ModelForge Service when new data lands from Hive/Kafka
// (paper §4.3): which table changed, by how much, and up to where.
struct IngestionEvent {
  std::string table;
  int64_t rows_added = 0;
  int64_t total_rows = 0;   // table size after the batch
  int64_t offset = 0;       // cumulative batch counter (Kafka-offset style)
  // The batch's per-column summaries + raw values, extracted during the
  // append (one pass, no full-table scan). Shared so observers may retain
  // it past the callback; the ingestor's own consumption log drops it (the
  // log would otherwise pin every batch ever ingested in memory).
  std::shared_ptr<const incremental::IngestDelta> delta;
};

// Synchronous tap on the consumption log: notified after each batch lands
// (rows appended, table resealed). The feedback subsystem uses this as its
// ingest-epoch signal — cached actual cardinalities for the grown table are
// stale the moment the event fires.
class IngestObserver {
 public:
  virtual ~IngestObserver() = default;
  virtual void OnIngest(const IngestionEvent& event) = 0;
};

// Simulates ByteHouse's Data Ingestor: appends batches of rows to catalog
// tables and accumulates the consumption log the training service reads to
// decide when enough new data has arrived to retrain.
//
// Two batch flavors:
//  * stationary batches resample existing rows — the common production case
//    the paper leans on ("the underlying data distribution tends to be
//    relatively stable");
//  * drifted batches shift selected columns' values, modelling the
//    distribution shift that degrades deployed models and trips the Model
//    Monitor.
class DataIngestor {
 public:
  explicit DataIngestor(minihouse::Database* db) : db_(db) {}

  // Appends `rows` new rows to `table` by resampling existing rows
  // (bootstrap resampling preserves all marginal and joint distributions).
  Result<IngestionEvent> IngestStationaryBatch(const std::string& table,
                                               int64_t rows, Rng* rng);

  // Appends `rows` new rows whose `drift_column` values are shifted by
  // `drift_offset` (other columns resampled), skewing that column's
  // distribution away from what the models learned.
  Result<IngestionEvent> IngestDriftedBatch(const std::string& table,
                                            int64_t rows, int drift_column,
                                            int64_t drift_offset, Rng* rng);

  // The consumption log since construction (what the ModelForge Service
  // would consume to schedule retraining).
  const std::vector<IngestionEvent>& events() const { return events_; }

  // Rows added to `table` since the last call to MarkTrained(table) — the
  // "enough new data gathered?" signal.
  int64_t PendingRows(const std::string& table) const;
  void MarkTrained(const std::string& table);

  // Replaces the observer list with `observer` (not owned; must outlive the
  // ingestor or be reset to null) to be called after every ingested batch.
  void SetObserver(IngestObserver* observer) {
    observers_.clear();
    if (observer != nullptr) observers_.push_back(observer);
  }

  // Adds an additional observer (not owned). Observers fire in registration
  // order, after the batch is sealed and the table's write latch released —
  // an observer may therefore run queries or take lifecycle locks.
  void AddObserver(IngestObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }

 private:
  Result<IngestionEvent> AppendResampled(const std::string& table,
                                         int64_t rows, int drift_column,
                                         int64_t drift_offset, Rng* rng);

  minihouse::Database* db_;
  std::vector<IngestObserver*> observers_;
  std::vector<IngestionEvent> events_;
  std::map<std::string, int64_t> trained_watermark_;
  int64_t next_offset_ = 0;
};

}  // namespace bytecard

#endif  // BYTECARD_BYTECARD_DATA_INGESTOR_H_
