#ifndef BYTECARD_BYTECARD_MODEL_MONITOR_H_
#define BYTECARD_BYTECARD_MODEL_MONITOR_H_

#include <map>
#include <string>
#include <vector>

#include "cardest/bayes/bayes_net.h"
#include "common/rng.h"
#include "common/status.h"
#include "minihouse/table.h"

namespace bytecard {

struct MonitorReport {
  int probes = 0;
  double median_qerror = 1.0;
  double p90_qerror = 1.0;
  double max_qerror = 1.0;
  bool healthy = true;
};

// The Model Monitor (paper §4.4.2): auto-generates multi-predicate probe
// queries, executes them for true cardinalities, computes the model's
// Q-Errors, and flags models whose error exceeds the threshold so ByteCard
// falls back to traditional estimation for the affected table. Only
// single-table COUNT models are probed (computing true join sizes online is
// too expensive); multi-table estimates are covered transitively because
// FactorJoin composes single-table models.
class ModelMonitor {
 public:
  struct Options {
    int probes = 24;
    int max_predicates = 3;
    double qerror_threshold = 100.0;  // P90 above this marks unhealthy
    uint64_t seed = 99;
  };

  ModelMonitor() {}
  explicit ModelMonitor(Options options) : options_(options) {}

  // Probes `context` against `table` and records the health verdict.
  Result<MonitorReport> EvaluateBnModel(
      const minihouse::Table& table,
      const cardest::BnInferenceContext& context);

  // Health registry consulted by the ByteCard facade.
  bool IsHealthy(const std::string& table) const;
  void SetHealth(const std::string& table, bool healthy);

  // Generates one random multi-predicate probe conjunction over `table`
  // (exposed for tests and for the NDV fine-tune trigger path).
  minihouse::Conjunction GenerateProbe(const minihouse::Table& table,
                                       Rng* rng) const;

 private:
  Options options_;
  std::map<std::string, bool> health_;
};

}  // namespace bytecard

#endif  // BYTECARD_BYTECARD_MODEL_MONITOR_H_
