#ifndef BYTECARD_BYTECARD_ROUTING_ROUTING_TABLE_H_
#define BYTECARD_BYTECARD_ROUTING_ROUTING_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/serde.h"
#include "common/status.h"

namespace bytecard::routing {

// The estimator families the adaptive router chooses between. Every family
// except kGeneral is one concrete answer path inside EstimatorSnapshot;
// kGeneral is the tiered BN → FactorJoin → fallback dispatch the snapshot
// serves for unrouted classes, and kCachedActual marks classes whose traffic
// is dominated by repeats the feedback cache answers upstream (at the
// snapshot level it resolves like kGeneral — the cache intercepts in
// EstimationContext before the snapshot is ever asked).
enum class RouteFamily : uint32_t {
  kGeneral = 0,
  kBn = 1,
  kFactorJoin = 2,
  kTraditional = 3,
  kSample = 4,
  kZoneMap = 5,
  kCachedActual = 6,
};

inline constexpr uint32_t kNumRouteFamilies = 7;

const char* RouteFamilyName(RouteFamily family);

// One mined decision: which family serves a route class, and the replayed
// evidence that justified it (median q-error vs the general router, mean
// per-estimate latency, sample count). `tables` scopes drift demotion — a
// route touching a demoted table is dropped (WithoutTable).
struct RouteDecision {
  RouteFamily family = RouteFamily::kGeneral;
  double median_qerror = 1.0;        // winner's median q-error on the trace
  double general_qerror = 1.0;       // general router's median on the class
  double mean_latency_nanos = 0.0;   // winner's mean per-estimate latency
  int64_t samples = 0;               // trace observations behind the score
  std::vector<std::string> tables;   // base tables the class touches
};

// The per-class routing decisions one RouteMiner run produced. Immutable
// once published inside an EstimatorSnapshot (lifecycle writers build a new
// one — or filter a copy — and publish a successor snapshot; see
// SnapshotBuilder::SetRoutingTable). Stamped with the ingest epoch of the
// snapshot whose trace was mined: a snapshot whose epoch has moved past the
// stamp treats every route as stale and serves the general path until routes
// are re-mined.
class RoutingTable {
 public:
  RoutingTable() = default;

  void Insert(std::string route_class, RouteDecision decision) {
    routes_[std::move(route_class)] = std::move(decision);
  }

  // Null when the class has no mined route (general dispatch).
  const RouteDecision* Find(const std::string& route_class) const {
    auto it = routes_.find(route_class);
    return it == routes_.end() ? nullptr : &it->second;
  }

  bool empty() const { return routes_.empty(); }
  size_t size() const { return routes_.size(); }
  const std::map<std::string, RouteDecision>& routes() const {
    return routes_;
  }

  // Ingest epoch of the snapshot the trace was replayed against.
  uint64_t mined_epoch() const { return mined_epoch_; }
  void set_mined_epoch(uint64_t epoch) { mined_epoch_ = epoch; }
  // Snapshot version mined against (provenance only).
  uint64_t mined_snapshot_version() const { return mined_snapshot_version_; }
  void set_mined_snapshot_version(uint64_t v) { mined_snapshot_version_ = v; }

  // Drift demotion: a copy without any route touching `table`. Routes were
  // scored against a model regime that included the now-drifted table, so
  // their evidence is void; unaffected classes keep serving.
  std::shared_ptr<const RoutingTable> WithoutTable(
      const std::string& table) const;

  // Structural admission check (the SnapshotBuilder runs this before a
  // routing table may enter a snapshot): known families, positive sample
  // counts, finite non-negative scores.
  Status Validate() const;

  void Serialize(BufferWriter* writer) const;
  static Result<RoutingTable> Deserialize(const std::string& bytes);

 private:
  std::map<std::string, RouteDecision> routes_;
  uint64_t mined_epoch_ = 0;
  uint64_t mined_snapshot_version_ = 0;
};

}  // namespace bytecard::routing

#endif  // BYTECARD_BYTECARD_ROUTING_ROUTING_TABLE_H_
