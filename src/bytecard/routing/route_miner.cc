#include "bytecard/routing/route_miner.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/stopwatch.h"
#include "minihouse/query.h"

namespace bytecard::routing {

namespace {

// Candidate families scored against the general router. kGeneral is the
// baseline, kCachedActual is scored separately (it replays the cache, not an
// estimator), and a family inapplicable for *any* record of a class is
// disqualified for the whole class — a route must answer every
// instantiation of its template.
constexpr RouteFamily kCandidates[] = {
    RouteFamily::kBn, RouteFamily::kFactorJoin, RouteFamily::kTraditional,
    RouteFamily::kSample, RouteFamily::kZoneMap,
};
constexpr size_t kNumCandidates = sizeof(kCandidates) / sizeof(kCandidates[0]);

struct FamilyScore {
  bool applicable = true;
  std::vector<double> qerrors;
  double total_latency_nanos = 0.0;
};

struct ClassStats {
  std::vector<double> general_qerrors;
  double general_latency_nanos = 0.0;
  FamilyScore families[kNumCandidates];
  std::vector<double> cached_qerrors;
  double cached_latency_nanos = 0.0;
  std::set<std::string> tables;
};

double Median(std::vector<double> values) {
  if (values.empty()) return 1.0;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

// Rebuilds the bound query a replay spec describes. Fails (false) when a
// table has left the catalog since the observation was recorded.
bool RebuildQuery(const minihouse::ReplaySpec& replay,
                  const minihouse::Database& db,
                  minihouse::BoundQuery* query) {
  for (size_t i = 0; i < replay.tables.size(); ++i) {
    Result<const minihouse::Table*> table = db.FindTable(replay.tables[i]);
    if (!table.ok()) return false;
    minihouse::BoundTableRef ref;
    ref.table = table.value();
    ref.alias = replay.tables[i];
    ref.filters = replay.filters[i];
    query->tables.push_back(std::move(ref));
  }
  for (const minihouse::ReplaySpec::Edge& e : replay.edges) {
    minihouse::JoinEdge edge;
    edge.left_table = e.left_table;
    edge.left_column = e.left_column;
    edge.right_table = e.right_table;
    edge.right_column = e.right_column;
    query->joins.push_back(edge);
  }
  for (const minihouse::ReplaySpec::GroupKey& g : replay.group_keys) {
    minihouse::GroupKeyRef key;
    key.table = g.table;
    key.column = g.column;
    query->group_by.push_back(key);
  }
  return true;
}

}  // namespace

Result<std::shared_ptr<const RoutingTable>> RouteMiner::Mine(
    const std::vector<minihouse::QueryFeedback>& trace,
    const EstimatorSnapshot& snapshot, const minihouse::Database& db,
    RouteMinerReport* report) const {
  RouteMinerReport local_report;

  // Flatten the trace (oldest-first) and keep the newest window. The
  // cached-actual replay below walks the kept records in order, so its
  // "prior actual" state matches what the feedback cache would have held.
  std::vector<const minihouse::OperatorFeedback*> records;
  for (const minihouse::QueryFeedback& fb : trace) {
    for (const minihouse::OperatorFeedback& op : fb.ops) {
      ++local_report.records_scanned;
      if (op.route_class.empty() || !op.replay.valid) continue;
      records.push_back(&op);
    }
  }
  if (records.size() > options_.max_replay_records) {
    records.erase(records.begin(),
                  records.end() - static_cast<long>(options_.max_replay_records));
  }

  std::map<std::string, ClassStats> classes;
  std::map<std::string, double> prior_actual;  // fingerprint -> last actual

  for (const minihouse::OperatorFeedback* op : records) {
    minihouse::BoundQuery query;
    if (!RebuildQuery(op->replay, db, &query)) continue;
    ++local_report.records_replayed;

    // Same latch discipline as planning: zone maps and samples must not be
    // read while an ingest batch re-seals blocks underneath.
    minihouse::TableReadGuard guard(query);

    const bool is_scan = op->kind == minihouse::FeedbackKind::kScan;
    const double scan_rows =
        is_scan ? static_cast<double>(query.tables[0].table->num_rows()) : 1.0;
    cardest::CardEstRequest request;
    switch (op->kind) {
      case minihouse::FeedbackKind::kScan:
        request = cardest::CardEstRequest::Selectivity(*query.tables[0].table,
                                                       query.tables[0].filters);
        break;
      case minihouse::FeedbackKind::kJoin:
        request = cardest::CardEstRequest::Count(query);
        break;
      case minihouse::FeedbackKind::kGroupNdv:
        request = cardest::CardEstRequest::GroupNdv(query);
        break;
    }

    ClassStats& stats = classes[op->route_class];
    for (const std::string& name : op->replay.tables) stats.tables.insert(name);

    // The general router's answer to the same question, timed. Called
    // routing-free (EstimateGeneral) so re-mining a snapshot whose routes
    // are already live still scores against the true general baseline.
    Stopwatch watch;
    double general = snapshot.EstimateGeneral(request, nullptr, nullptr);
    const double general_nanos = static_cast<double>(watch.ElapsedNanos());
    if (is_scan) general *= scan_rows;
    const double general_q = minihouse::FeedbackQError(general, op->actual);
    stats.general_qerrors.push_back(general_q);
    stats.general_latency_nanos += general_nanos;

    for (size_t f = 0; f < kNumCandidates; ++f) {
      FamilyScore& score = stats.families[f];
      if (!score.applicable) continue;
      double value = 0.0;
      watch.Restart();
      if (!snapshot.EstimateWithFamily(kCandidates[f], request, nullptr,
                                       nullptr, &value)) {
        score.applicable = false;
        continue;
      }
      score.total_latency_nanos += static_cast<double>(watch.ElapsedNanos());
      if (is_scan) value *= scan_rows;
      score.qerrors.push_back(minihouse::FeedbackQError(value, op->actual));
    }

    // Cached-actual family: a repeat of an already-observed fingerprint is
    // answered by the prior actual at ~zero cost; first sightings pay the
    // general path. Classes dominated by repeats win this race.
    auto prior = prior_actual.find(op->fingerprint);
    if (prior != prior_actual.end()) {
      stats.cached_qerrors.push_back(
          minihouse::FeedbackQError(prior->second, op->actual));
    } else {
      stats.cached_qerrors.push_back(general_q);
      stats.cached_latency_nanos += general_nanos;
    }
    prior_actual[op->fingerprint] = op->actual;
  }

  auto table = std::make_shared<RoutingTable>();
  table->set_mined_epoch(snapshot.ingest_epoch());
  table->set_mined_snapshot_version(snapshot.version());

  local_report.classes_seen = static_cast<int64_t>(classes.size());
  for (auto& [cls, stats] : classes) {
    const int64_t samples =
        static_cast<int64_t>(stats.general_qerrors.size());
    if (samples < options_.min_samples_per_class) continue;
    const double n = static_cast<double>(samples);
    const double general_med = Median(stats.general_qerrors);
    const double general_lat = stats.general_latency_nanos / n;

    // Gather eligible challengers: at least as accurate as the general
    // router (median), applicable on every record of the class.
    struct Challenger {
      RouteFamily family;
      double median;
      double mean_latency;
    };
    std::vector<Challenger> eligible;
    for (size_t f = 0; f < kNumCandidates; ++f) {
      const FamilyScore& score = stats.families[f];
      if (!score.applicable || score.qerrors.empty()) continue;
      const double med = Median(score.qerrors);
      if (med > general_med) continue;
      eligible.push_back({kCandidates[f], med, score.total_latency_nanos / n});
    }
    {
      const double med = Median(stats.cached_qerrors);
      if (med <= general_med) {
        eligible.push_back(
            {RouteFamily::kCachedActual, med, stats.cached_latency_nanos / n});
      }
    }

    RouteDecision decision;
    decision.family = RouteFamily::kGeneral;
    decision.median_qerror = general_med;
    decision.general_qerror = general_med;
    decision.mean_latency_nanos = general_lat;
    decision.samples = samples;
    decision.tables.assign(stats.tables.begin(), stats.tables.end());

    if (!eligible.empty()) {
      double best_med = eligible[0].median;
      for (const Challenger& c : eligible) best_med = std::min(best_med, c.median);
      // Accuracy tie-band, then latency: among challengers within slack of
      // the best median, the cheapest one wins.
      const Challenger* winner = nullptr;
      for (const Challenger& c : eligible) {
        if (c.median > best_med * (1.0 + options_.accuracy_slack)) continue;
        if (winner == nullptr || c.mean_latency < winner->mean_latency) {
          winner = &c;
        }
      }
      // Promote only on strict improvement — better median, or equal
      // accuracy at lower cost. Otherwise the class keeps an explicit
      // general route (documents the decision; estimates unchanged).
      if (winner != nullptr && (winner->median < general_med ||
                                winner->mean_latency < general_lat)) {
        decision.family = winner->family;
        decision.median_qerror = winner->median;
        decision.mean_latency_nanos = winner->mean_latency;
      }
    }
    if (decision.family != RouteFamily::kGeneral) ++local_report.classes_routed;
    table->Insert(cls, std::move(decision));
  }

  if (report != nullptr) *report = local_report;
  return std::shared_ptr<const RoutingTable>(std::move(table));
}

}  // namespace bytecard::routing
