#ifndef BYTECARD_BYTECARD_ROUTING_ROUTE_MINER_H_
#define BYTECARD_BYTECARD_ROUTING_ROUTE_MINER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bytecard/routing/routing_table.h"
#include "bytecard/snapshot.h"
#include "minihouse/database.h"
#include "minihouse/feedback.h"

namespace bytecard::routing {

struct RouteMinerOptions {
  // A class needs at least this many replayable observations before a route
  // decision is mined for it (thin evidence keeps the general default).
  int min_samples_per_class = 3;
  // Newest-first cap on trace records replayed (bounds one mining pass).
  size_t max_replay_records = 4096;
  // Accuracy tie-band: among families whose median q-error beats the general
  // router, any within (1 + slack) of the best median competes on latency.
  double accuracy_slack = 0.10;
};

// What one mining pass did (surfaced through ByteCard::MineRoutes).
struct RouteMinerReport {
  int64_t records_scanned = 0;   // feedback observations considered
  int64_t records_replayed = 0;  // observations with a valid replay spec
  int64_t classes_seen = 0;      // distinct route classes in the trace
  int64_t classes_routed = 0;    // classes given a non-default route
};

// Mines a RoutingTable from a recorded feedback trace: replays each
// observation's estimation question against `snapshot` through every
// applicable estimator family, scores families on q-error against the
// recorded actuals plus estimation latency, and emits the empirically-best
// family per route class. Classes without enough evidence — and classes
// where no family strictly beats the general router — get no entry, so the
// general path remains the default for everything unseen.
//
// Grouping uses the *recorded* route-class strings (stamped at execution
// time), never classes recomputed from replays: replay specs renumber
// tables locally, which would perturb the self-join "#<idx>" suffixes.
class RouteMiner {
 public:
  explicit RouteMiner(RouteMinerOptions options = {}) : options_(options) {}

  // `trace` is oldest-first (FeedbackLog::Snapshot order). The result is
  // stamped with the snapshot's ingest epoch and version; publish it via
  // SnapshotBuilder::SetRoutingTable.
  Result<std::shared_ptr<const RoutingTable>> Mine(
      const std::vector<minihouse::QueryFeedback>& trace,
      const EstimatorSnapshot& snapshot, const minihouse::Database& db,
      RouteMinerReport* report = nullptr) const;

 private:
  RouteMinerOptions options_;
};

}  // namespace bytecard::routing

#endif  // BYTECARD_BYTECARD_ROUTING_ROUTE_MINER_H_
