#include "bytecard/routing/routing_table.h"

#include <cmath>
#include <utility>

namespace bytecard::routing {

namespace {
constexpr uint32_t kMagic = 0x54524342;  // "BCRT"
constexpr uint32_t kFormatVersion = 1;
}  // namespace

const char* RouteFamilyName(RouteFamily family) {
  switch (family) {
    case RouteFamily::kGeneral:
      return "general";
    case RouteFamily::kBn:
      return "bn";
    case RouteFamily::kFactorJoin:
      return "factorjoin";
    case RouteFamily::kTraditional:
      return "traditional";
    case RouteFamily::kSample:
      return "sample";
    case RouteFamily::kZoneMap:
      return "zonemap";
    case RouteFamily::kCachedActual:
      return "cached";
  }
  return "unknown";
}

std::shared_ptr<const RoutingTable> RoutingTable::WithoutTable(
    const std::string& table) const {
  auto filtered = std::make_shared<RoutingTable>();
  filtered->mined_epoch_ = mined_epoch_;
  filtered->mined_snapshot_version_ = mined_snapshot_version_;
  for (const auto& [cls, decision] : routes_) {
    bool touches = false;
    for (const std::string& t : decision.tables) {
      if (t == table) {
        touches = true;
        break;
      }
    }
    if (!touches) filtered->routes_.emplace(cls, decision);
  }
  return filtered;
}

Status RoutingTable::Validate() const {
  for (const auto& [cls, decision] : routes_) {
    if (cls.empty()) {
      return Status::InvalidModel("routing table: empty route class");
    }
    if (static_cast<uint32_t>(decision.family) >= kNumRouteFamilies) {
      return Status::InvalidModel("routing table: unknown family for class " +
                                  cls);
    }
    if (decision.samples <= 0) {
      return Status::InvalidModel(
          "routing table: non-positive sample count for class " + cls);
    }
    if (!std::isfinite(decision.median_qerror) ||
        decision.median_qerror < 1.0 ||
        !std::isfinite(decision.general_qerror) ||
        decision.general_qerror < 1.0) {
      return Status::InvalidModel(
          "routing table: q-error out of range for class " + cls);
    }
    if (!std::isfinite(decision.mean_latency_nanos) ||
        decision.mean_latency_nanos < 0.0) {
      return Status::InvalidModel(
          "routing table: negative latency for class " + cls);
    }
  }
  return Status::Ok();
}

void RoutingTable::Serialize(BufferWriter* writer) const {
  writer->WriteU32(kMagic);
  writer->WriteU32(kFormatVersion);
  writer->WriteU64(mined_epoch_);
  writer->WriteU64(mined_snapshot_version_);
  writer->WriteU64(routes_.size());
  for (const auto& [cls, decision] : routes_) {
    writer->WriteString(cls);
    writer->WriteU32(static_cast<uint32_t>(decision.family));
    writer->WriteDouble(decision.median_qerror);
    writer->WriteDouble(decision.general_qerror);
    writer->WriteDouble(decision.mean_latency_nanos);
    writer->WriteI64(decision.samples);
    writer->WriteU64(decision.tables.size());
    for (const std::string& t : decision.tables) writer->WriteString(t);
  }
}

Result<RoutingTable> RoutingTable::Deserialize(const std::string& bytes) {
  BufferReader reader(bytes);
  uint32_t magic = 0;
  uint32_t format = 0;
  BC_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kMagic) {
    return Status::InvalidModel("routing table: bad magic");
  }
  BC_RETURN_IF_ERROR(reader.ReadU32(&format));
  if (format != kFormatVersion) {
    return Status::InvalidModel("routing table: unsupported format version");
  }
  RoutingTable table;
  BC_RETURN_IF_ERROR(reader.ReadU64(&table.mined_epoch_));
  BC_RETURN_IF_ERROR(reader.ReadU64(&table.mined_snapshot_version_));
  uint64_t count = 0;
  BC_RETURN_IF_ERROR(reader.ReadU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string cls;
    BC_RETURN_IF_ERROR(reader.ReadString(&cls));
    RouteDecision decision;
    uint32_t family = 0;
    BC_RETURN_IF_ERROR(reader.ReadU32(&family));
    decision.family = static_cast<RouteFamily>(family);
    BC_RETURN_IF_ERROR(reader.ReadDouble(&decision.median_qerror));
    BC_RETURN_IF_ERROR(reader.ReadDouble(&decision.general_qerror));
    BC_RETURN_IF_ERROR(reader.ReadDouble(&decision.mean_latency_nanos));
    BC_RETURN_IF_ERROR(reader.ReadI64(&decision.samples));
    uint64_t num_tables = 0;
    BC_RETURN_IF_ERROR(reader.ReadU64(&num_tables));
    decision.tables.reserve(num_tables);
    for (uint64_t t = 0; t < num_tables; ++t) {
      std::string name;
      BC_RETURN_IF_ERROR(reader.ReadString(&name));
      decision.tables.push_back(std::move(name));
    }
    table.routes_.emplace(std::move(cls), std::move(decision));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidModel("routing table: trailing bytes");
  }
  BC_RETURN_IF_ERROR(table.Validate());
  return table;
}

}  // namespace bytecard::routing
