#ifndef BYTECARD_BYTECARD_MODEL_VALIDATOR_H_
#define BYTECARD_BYTECARD_MODEL_VALIDATOR_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace bytecard {

class CardEstInferenceEngine;

// The Model Validator (paper §4.2.1): guards query processing from bad or
// oversized models. Two responsibilities:
//
//  * size checker — rejects individual models above a per-model cap and
//    keeps the cumulative footprint of admitted models under a total cap by
//    evicting least-recently-used models;
//  * health detector — delegates to each engine's Validate() (e.g. the BN
//    DAG/cycle check, finite NN weights) before a model may serve queries.
class ModelValidator {
 public:
  struct Options {
    int64_t max_model_bytes = 16 << 20;    // 16 MiB per model
    int64_t max_total_bytes = 256 << 20;   // 256 MiB across all models
  };

  ModelValidator() {}
  explicit ModelValidator(Options options) : options_(options) {}

  // Full admission check for a loaded engine keyed by `model_key`
  // ("kind/name"). On success the model is registered in the LRU set;
  // `evicted` (optional) receives keys whose budgets were reclaimed.
  Status Admit(const std::string& model_key,
               const CardEstInferenceEngine& engine,
               std::vector<std::string>* evicted);

  // Size-only checks, exposed for tests.
  Status CheckModelSize(int64_t size_bytes) const;

  // Marks `model_key` as used (moves it to the LRU front).
  void Touch(const std::string& model_key);

  // Drops a model from the accounting (e.g. after replacement).
  void Evict(const std::string& model_key);

  bool IsAdmitted(const std::string& model_key) const;
  int64_t total_bytes() const { return total_bytes_; }

 private:
  void ReclaimUntilFits(int64_t incoming, std::vector<std::string>* evicted);

  Options options_;
  // LRU: front = most recently used.
  std::list<std::string> lru_;
  std::map<std::string, std::pair<std::list<std::string>::iterator, int64_t>>
      admitted_;
  int64_t total_bytes_ = 0;
};

}  // namespace bytecard

#endif  // BYTECARD_BYTECARD_MODEL_VALIDATOR_H_
