#include "bytecard/model_loader.h"

#include <algorithm>
#include <map>

namespace bytecard {

Result<std::vector<LoadedModel>> ModelLoader::PollOnce() {
  ModelForgeService forge(storage_dir_);  // reuses the store's listing logic
  BC_ASSIGN_OR_RETURN(std::vector<ModelArtifact> artifacts,
                      forge.ListArtifacts());

  // ListArtifacts returns newest-first within each (kind, name); keep the
  // first occurrence per key.
  std::map<std::pair<std::string, std::string>, const ModelArtifact*> newest;
  for (const ModelArtifact& artifact : artifacts) {
    newest.try_emplace({artifact.kind, artifact.name}, &artifact);
  }

  std::vector<LoadedModel> loaded;
  for (const auto& [key, artifact] : newest) {
    auto it = loaded_.find(key);
    if (it != loaded_.end() && it->second >= artifact->timestamp) {
      continue;  // already up to date
    }
    BC_ASSIGN_OR_RETURN(std::string bytes,
                        ReadArtifactBytes(artifact->path));
    LoadedModel model;
    model.kind = artifact->kind;
    model.name = artifact->name;
    model.timestamp = artifact->timestamp;
    model.bytes = std::move(bytes);
    loaded.push_back(std::move(model));
  }
  return loaded;
}

void ModelLoader::CommitLoaded(const std::string& kind,
                               const std::string& name, int64_t timestamp) {
  int64_t& mark = loaded_[{kind, name}];
  mark = std::max(mark, timestamp);
}

int64_t ModelLoader::LoadedTimestamp(const std::string& kind,
                                     const std::string& name) const {
  auto it = loaded_.find({kind, name});
  return it == loaded_.end() ? 0 : it->second;
}

}  // namespace bytecard
