#ifndef BYTECARD_BYTECARD_MODEL_LOADER_H_
#define BYTECARD_BYTECARD_MODEL_LOADER_H_

#include <map>
#include <string>
#include <vector>

#include "bytecard/model_forge.h"
#include "common/status.h"

namespace bytecard {

// One model picked up from the artifact store.
struct LoadedModel {
  std::string kind;
  std::string name;
  int64_t timestamp = 0;
  std::string bytes;
};

// The Model Loader (paper §4.2.1): a background task (scheduled by the
// Daemon Manager like a compaction job) that scans the artifact store and
// loads models using a timestamp-based strategy — for each (kind, name) only
// the artifact with the most recent timestamp is considered, and only if it
// is strictly newer than what was already loaded. Polling cadence is the
// caller's business (ByteHouse defaults to hourly unless the Model Monitor
// demands an early refresh); PollOnce is one cycle.
class ModelLoader {
 public:
  explicit ModelLoader(std::string storage_dir)
      : storage_dir_(std::move(storage_dir)) {}

  // Scans the store and returns every (kind, name)'s newest artifact that is
  // newer than the last *committed* version. Does NOT advance the high-water
  // marks: a returned candidate that later fails validation/InitContext (or
  // whose snapshot publish fails) is offered again on the next poll. Call
  // CommitLoaded once a candidate has actually been published for serving.
  Result<std::vector<LoadedModel>> PollOnce();

  // Advances the high-water mark for (kind, name) to `timestamp` — call only
  // after the corresponding model was successfully admitted and its snapshot
  // published. Never moves a mark backwards.
  void CommitLoaded(const std::string& kind, const std::string& name,
                    int64_t timestamp);

  // Highest timestamp committed for (kind, name); 0 if never committed.
  int64_t LoadedTimestamp(const std::string& kind,
                          const std::string& name) const;

 private:
  std::string storage_dir_;
  std::map<std::pair<std::string, std::string>, int64_t> loaded_;
};

}  // namespace bytecard

#endif  // BYTECARD_BYTECARD_MODEL_LOADER_H_
