#ifndef BYTECARD_BYTECARD_MODEL_PREPROCESSOR_H_
#define BYTECARD_BYTECARD_MODEL_PREPROCESSOR_H_

#include <map>
#include <string>
#include <vector>

#include "cardest/factorjoin/join_bucket.h"
#include "minihouse/database.h"
#include "minihouse/query.h"
#include "minihouse/schema.h"

namespace bytecard {

// One row of the model_preprocessor_info system table (paper §4.4.1).
struct ColumnModelInfo {
  std::string table;
  int column = -1;
  std::string column_name;
  minihouse::MlType ml_type = minihouse::MlType::kUnsupported;
  bool selected = false;  // column selection verdict
};

// The Model Preprocessor (paper §4.4.1): runs in the analyzer/optimizer,
// producing the metadata ModelForge trains from.
//
//  * column selection — exclude complex types (Array/Map) the models cannot
//    process;
//  * preliminary type mapping — database type -> ML type (Categorical /
//    Continuous);
//  * join-pattern collection — joinable-column equivalence classes gathered
//    from analyzed queries (ByteHouse customers do not declare PK-FK
//    constraints, so patterns come from observed queries).
class ModelPreprocessor {
 public:
  // Column selection + type mapping over the whole catalog; the result is
  // the model_preprocessor_info system table's contents.
  static std::vector<ColumnModelInfo> AnalyzeCatalog(
      const minihouse::Database& db);

  // Join-pattern collection: join-key equivalence classes (transitive over
  // all queries' equi-join edges), keyed by table name + column index.
  static std::vector<std::vector<cardest::JoinKeyRef>> CollectJoinPatterns(
      const std::vector<minihouse::BoundQuery>& queries);

  // Selected (modelable) column indices of one table.
  static std::vector<int> SelectedColumns(const minihouse::Table& table);

  static minihouse::MlType MapType(minihouse::DataType type);
};

}  // namespace bytecard

#endif  // BYTECARD_BYTECARD_MODEL_PREPROCESSOR_H_
