#include "bytecard/bytecard.h"

#include <algorithm>
#include <shared_mutex>
#include <utility>

#include "bytecard/model_loader.h"
#include "bytecard/model_preprocessor.h"
#include "common/logging.h"
#include "common/serde.h"
#include "common/stopwatch.h"
#include "sql/analyzer.h"

namespace bytecard {

ByteCard::ByteCard(Options options)
    : options_(std::move(options)), monitor_(options_.monitor) {
  if (options_.enable_feedback) {
    feedback_owned_ =
        std::make_unique<feedback::FeedbackManager>(options_.feedback);
    feedback_.store(feedback_owned_.get(), std::memory_order_release);
  }
}

void ByteCard::EnableFeedback() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (feedback_owned_ != nullptr) return;
  feedback_owned_ =
      std::make_unique<feedback::FeedbackManager>(options_.feedback);
  feedback_.store(feedback_owned_.get(), std::memory_order_release);
}

void ByteCard::StartServing(minihouse::SchedulerOptions options) {
  scheduler_.reset();  // drain any previous front-end first
  // Wire the default SQL front door unless the caller injected its own
  // analyzer. The scheduler itself cannot name sql::AnalyzeSql (the engine
  // layer does not link the SQL library); the facade, which does, closes the
  // loop here.
  if (options.sql_analyzer == nullptr) {
    options.sql_analyzer = [](const std::string& sql,
                              const minihouse::Database& db) {
      return sql::AnalyzeSql(sql, db);
    };
  }
  scheduler_ = std::make_unique<minihouse::QueryScheduler>(this,
                                                           std::move(options));
}

void ByteCard::StopServing() { scheduler_.reset(); }

std::shared_ptr<minihouse::QueryTicket> ByteCard::Submit(
    const minihouse::BoundQuery& query) {
  BC_CHECK(scheduler_ != nullptr);  // StartServing first
  return scheduler_->Submit(query);
}

std::shared_ptr<minihouse::QueryTicket> ByteCard::Submit(
    const std::string& sql, const minihouse::Database& db) {
  BC_CHECK(scheduler_ != nullptr);  // StartServing first
  return scheduler_->Submit(sql, db);
}

Result<minihouse::ExecResult> ByteCard::Wait(
    const std::shared_ptr<minihouse::QueryTicket>& ticket) {
  BC_CHECK(scheduler_ != nullptr);
  return scheduler_->Wait(ticket);
}

Result<std::unique_ptr<ByteCard>> ByteCard::Bootstrap(
    const minihouse::Database& db,
    const std::vector<minihouse::BoundQuery>& workload_hint,
    const std::string& storage_dir, const Options& options) {
  std::unique_ptr<ByteCard> bc(new ByteCard(options));
  bc->storage_dir_ = storage_dir;
  bc->loader_ = std::make_unique<ModelLoader>(storage_dir);
  ModelForgeService forge(storage_dir);

  SnapshotBuilder builder(nullptr, &bc->validator_);

  // 1. Model Preprocessor: join-pattern collection from the workload hint.
  const std::vector<std::vector<cardest::JoinKeyRef>> join_patterns =
      ModelPreprocessor::CollectJoinPatterns(workload_hint);

  // 2. FactorJoin bucket construction first — BN training needs its
  // boundaries so join-column bins coincide with join buckets.
  BC_ASSIGN_OR_RETURN(
      ModelArtifact fj_artifact,
      forge.TrainFactorJoin(db, join_patterns, options.join_buckets));
  bc->training_stats_.factorjoin_seconds = fj_artifact.train_seconds;
  bc->training_stats_.factorjoin_bytes = fj_artifact.size_bytes;
  bc->training_stats_.artifacts.push_back(fj_artifact);
  {
    BC_ASSIGN_OR_RETURN(std::string fj_bytes,
                        ReadArtifactBytes(fj_artifact.path));
    BC_RETURN_IF_ERROR(builder.LoadFactorJoin(fj_bytes));
  }

  // 3. Routine per-table BN training through the forge.
  for (const std::string& name : db.TableNames()) {
    const minihouse::Table* table = db.FindTable(name).value();
    if (table->num_rows() == 0) continue;

    const cardest::BnTrainOptions bn_options =
        bc->DeriveBnOptions(*table, builder.fj_model());
    if (bn_options.columns.empty()) continue;
    BC_ASSIGN_OR_RETURN(ModelArtifact artifact,
                        forge.TrainTableBn(*table, bn_options));
    bc->training_stats_.bn_seconds += artifact.train_seconds;
    bc->training_stats_.bn_bytes += artifact.size_bytes;
    bc->training_stats_.artifacts.push_back(artifact);
  }

  // 4. RBX: reuse a pre-trained workload-independent artifact when given,
  // otherwise run the one-off offline training.
  std::string rbx_bytes;
  if (!options.pretrained_rbx_path.empty()) {
    BC_ASSIGN_OR_RETURN(rbx_bytes,
                        ReadArtifactBytes(options.pretrained_rbx_path));
  } else {
    cardest::RbxTrainOptions rbx_options = options.rbx;
    rbx_options.seed = options.seed ^ 0x5bd1e995;
    BC_ASSIGN_OR_RETURN(ModelArtifact artifact, forge.TrainRbx(rbx_options));
    bc->training_stats_.rbx_seconds = artifact.train_seconds;
    bc->training_stats_.artifacts.push_back(artifact);
    BC_ASSIGN_OR_RETURN(rbx_bytes, ReadArtifactBytes(artifact.path));
  }
  BC_RETURN_IF_ERROR(builder.LoadRbx(rbx_bytes));
  bc->training_stats_.rbx_bytes =
      static_cast<int64_t>(rbx_bytes.size());

  // 5. Model Loader pickup + Validator admission + InitContext for BNs. The
  // single poll runs after all training, so it sees every artifact; marks
  // are committed only once the snapshot below is actually published.
  BC_ASSIGN_OR_RETURN(std::vector<LoadedModel> loaded,
                      bc->loader_->PollOnce());
  for (const LoadedModel& model : loaded) {
    if (model.kind != "bn") continue;  // fj/rbx were installed above
    BC_RETURN_IF_ERROR(builder.LoadBn(model.name, model.bytes));
  }

  // 6. Per-table samples for RBX featurization (§5.2.1).
  {
    auto samples =
        std::make_shared<std::map<std::string, stats::TableSample>>();
    Rng rng(options.seed ^ 0x9e3779b9);
    for (const std::string& name : db.TableNames()) {
      const minihouse::Table* table = db.FindTable(name).value();
      (*samples)[name] = stats::TableSample::Build(
          *table, options.sample_rate, options.sample_max_rows, &rng);
    }
    bc->samples_ = std::move(samples);
    builder.SetSamples(bc->samples_);
  }

  // 7. Traditional fallback sketches (ByteHouse keeps these regardless).
  if (options.build_fallback_sketches) {
    bc->fallback_statistics_ = stats::SketchStatistics::Build(db, 64);
    bc->fallback_ = std::make_shared<stats::SketchEstimator>(
        bc->fallback_statistics_.get());
    builder.SetFallback(bc->fallback_);
  }

  // 8. Model Monitor probing of each single-table model; verdicts are baked
  // into the snapshot.
  if (options.run_monitor) {
    for (const std::string& name : builder.bn_tables()) {
      const cardest::BnInferenceContext* context = builder.bn_context(name);
      const minihouse::Table* table = db.FindTable(name).value();
      Result<MonitorReport> report =
          bc->monitor_.EvaluateBnModel(*table, *context);
      if (!report.ok()) bc->monitor_.SetHealth(name, false);
      builder.SetHealth(name, bc->monitor_.IsHealthy(name));
    }
  }

  // 9. Publish snapshot v1, then commit the loader's high-water marks for
  // everything the poll offered (installed directly or via the poll) so the
  // next RefreshModels only reacts to genuinely newer artifacts.
  BC_ASSIGN_OR_RETURN(std::shared_ptr<const EstimatorSnapshot> snapshot,
                      builder.Finish());
  bc->snapshot_.Publish(std::move(snapshot));
  for (const LoadedModel& model : loaded) {
    bc->loader_->CommitLoaded(model.kind, model.name, model.timestamp);
  }
  return bc;
}

cardest::BnTrainOptions ByteCard::DeriveBnOptions(
    const minihouse::Table& table,
    const cardest::FactorJoinModel* fj_model) const {
  cardest::BnTrainOptions bn_options;
  bn_options.columns = ModelPreprocessor::SelectedColumns(table);
  bn_options.max_bins = options_.bn_max_bins;
  bn_options.max_train_rows = options_.bn_max_train_rows;
  bn_options.seed = options_.seed;
  if (fj_model != nullptr) {
    for (int c : bn_options.columns) {
      Result<std::vector<int64_t>> boundaries =
          fj_model->BoundariesFor(table.name(), c);
      if (boundaries.ok()) {
        bn_options.join_column_boundaries[c] = std::move(boundaries).value();
      }
    }
  }
  return bn_options;
}

Result<int> ByteCard::RefreshModels() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (loader_ == nullptr) {
    return Status::Internal("ByteCard was not bootstrapped with a store");
  }
  BC_ASSIGN_OR_RETURN(std::vector<LoadedModel> loaded, loader_->PollOnce());
  if (loaded.empty()) return 0;

  // Build the successor off the serving path: unchanged engines are shared,
  // each candidate is loaded/validated/contexted here. A bad candidate is
  // skipped — the incumbent keeps serving and, because its mark is not
  // committed, the loader offers it again next cycle (e.g. after the forge
  // republishes a healthy artifact).
  SnapshotBuilder builder(snapshot_.Acquire(), &validator_);
  std::vector<const LoadedModel*> applied;
  for (const LoadedModel& model : loaded) {
    Status status = Status::Ok();
    if (model.kind == "bn") {
      status = builder.LoadBn(model.name, model.bytes);
    } else if (model.kind == "factorjoin") {
      status = builder.LoadFactorJoin(model.bytes);
    } else if (model.kind == "rbx") {
      status = builder.LoadRbx(model.bytes);
    } else {
      continue;  // unknown kind: leave for a future loader generation
    }
    if (!status.ok()) {
      BC_LOG(Warning) << "skipping model " << model.kind << "/" << model.name
                      << " @" << model.timestamp << ": "
                      << status.ToString();
      continue;
    }
    applied.push_back(&model);
  }
  if (applied.empty()) return 0;

  // A freshly forged BN that passed validation supersedes the old model's
  // health verdict: re-promote it so a post-drift retrain restores learned
  // serving (the monitor — synthetic or drift-driven — can demote it again
  // if the replacement is also bad).
  for (const LoadedModel* model : applied) {
    if (model->kind != "bn") continue;
    builder.SetHealth(model->name, true);
    monitor_.SetHealth(model->name, true);
  }

  BC_ASSIGN_OR_RETURN(std::shared_ptr<const EstimatorSnapshot> snapshot,
                      builder.Finish());
  const uint64_t version = snapshot->version();
  snapshot_.Publish(std::move(snapshot));
  for (const LoadedModel* model : applied) {
    loader_->CommitLoaded(model->kind, model->name, model->timestamp);
  }
  // A full-retrain pickup supersedes the incremental maintainer's delta
  // state for those models: BN count pages re-unfold from the fresh model
  // on the next batch, the FactorJoin maintenance copy adopts the new stats.
  if (incremental_ != nullptr) {
    std::shared_ptr<const EstimatorSnapshot> fresh = snapshot_.Acquire();
    for (const LoadedModel* model : applied) {
      incremental_->OnModelReplaced(model->kind, model->name, *fresh);
    }
  }
  if (feedback_owned_ != nullptr) {
    feedback_owned_->OnSnapshotPublished(version);
    for (const LoadedModel* model : applied) {
      if (model->kind == "bn") {
        feedback_owned_->OnTableHealthChanged(model->name);
      }
    }
  }
  return static_cast<int>(applied.size());
}

Status ByteCard::RetrainTable(const minihouse::Table& table) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (storage_dir_.empty()) {
    return Status::Internal("ByteCard was not bootstrapped with a store");
  }
  const cardest::FactorJoinModel* fj_model = nullptr;
  std::shared_ptr<const EstimatorSnapshot> current = snapshot_.Acquire();
  if (current != nullptr && current->fj_engine() != nullptr) {
    fj_model = &current->fj_engine()->model();
  }
  const cardest::BnTrainOptions bn_options =
      DeriveBnOptions(table, fj_model);
  if (bn_options.columns.empty()) {
    return Status::InvalidArgument("table '" + table.name() +
                                   "' has no trainable columns");
  }
  ModelForgeService forge(storage_dir_);
  Result<ModelArtifact> trained = [&] {
    // Training scans the table's rows; the shared latch keeps a concurrent
    // ingest append from racing the scan. Lock order: lifecycle holders may
    // take table latches, never the reverse (DataIngestor releases its
    // exclusive latch before observers run).
    std::shared_lock<std::shared_mutex> table_latch(table.latch());
    return forge.TrainTableBn(table, bn_options);
  }();
  BC_ASSIGN_OR_RETURN(ModelArtifact artifact, std::move(trained));
  training_stats_.bn_seconds += artifact.train_seconds;
  training_stats_.artifacts.push_back(std::move(artifact));
  return Status::Ok();
}

Status ByteCard::EnableIncrementalMaintenance(
    const minihouse::Database& db, incremental::IncrementalOptions options) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (incremental_ != nullptr) return Status::Ok();
  std::shared_ptr<const EstimatorSnapshot> current = snapshot_.Acquire();
  if (current == nullptr) {
    return Status::Internal(
        "EnableIncrementalMaintenance requires a published snapshot");
  }
  auto maintainer =
      std::make_unique<incremental::IncrementalMaintainer>(this, options);
  {
    // Seeding scans every table once; shared latches (sorted, like
    // TableReadGuard) keep concurrent ingest appends from racing the scans.
    std::vector<const minihouse::Table*> tables;
    for (const std::string& name : db.TableNames()) {
      tables.push_back(db.FindTable(name).value());
    }
    std::sort(tables.begin(), tables.end());
    std::vector<std::shared_lock<std::shared_mutex>> latches;
    latches.reserve(tables.size());
    for (const minihouse::Table* t : tables) latches.emplace_back(t->latch());
    BC_RETURN_IF_ERROR(maintainer->Seed(db, *current));
  }
  incremental_ = std::move(maintainer);
  return Status::Ok();
}

Result<uint64_t> ByteCard::ApplyIngestDelta(
    const incremental::IngestDelta& delta) {
  Stopwatch timer;
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (incremental_ == nullptr) {
    return Status::Internal("incremental maintenance is not enabled");
  }
  std::shared_ptr<const EstimatorSnapshot> current = snapshot_.Acquire();
  if (current == nullptr) {
    return Status::Internal("no published snapshot to delta-update");
  }
  BC_ASSIGN_OR_RETURN(incremental::IncrementalUpdates updates,
                      incremental_->ComputeUpdates(delta, *current));

  // Delta-updated models enter through the same validated admission paths a
  // trained artifact takes; a failure leaves the incumbent serving. BN bytes
  // are only materialized when the artifact store needs them — the in-memory
  // AdoptBn path keeps the per-batch publish flat.
  const bool persist_artifacts =
      incremental_->options().publish_artifacts && !storage_dir_.empty();
  std::vector<std::pair<std::string, std::string>> bn_artifact_bytes;
  if (persist_artifacts) {
    for (const auto& [table, model] : updates.bn) {
      BufferWriter writer;
      model.Serialize(&writer);
      bn_artifact_bytes.emplace_back(table, writer.Release());
    }
  }
  SnapshotBuilder builder(current, &validator_);
  for (auto& [table, model] : updates.bn) {
    BC_RETURN_IF_ERROR(builder.AdoptBn(table, std::move(model)));
  }
  if (updates.has_fj) {
    BC_RETURN_IF_ERROR(builder.LoadFactorJoin(updates.fj_bytes));
  }
  if (updates.ndv != nullptr) builder.SetNdvSketches(updates.ndv);
  builder.SetIngestEpoch(delta.epoch);
  BC_ASSIGN_OR_RETURN(std::shared_ptr<const EstimatorSnapshot> snapshot,
                      builder.Finish());
  const uint64_t version = snapshot->version();
  snapshot_.Publish(std::move(snapshot));

  // Optionally persist the delta state to the artifact store, committing
  // loader marks so RefreshModels does not re-offer what is already live.
  if (persist_artifacts) {
    ModelForgeService forge(storage_dir_);
    for (const auto& [table, bytes] : bn_artifact_bytes) {
      Result<ModelArtifact> artifact =
          forge.PublishArtifact("bn", table, bytes);
      if (artifact.ok() && loader_ != nullptr) {
        loader_->CommitLoaded("bn", table, artifact.value().timestamp);
      }
    }
    if (updates.has_fj) {
      Result<ModelArtifact> artifact =
          forge.PublishArtifact("factorjoin", "global", updates.fj_bytes);
      if (artifact.ok() && loader_ != nullptr) {
        loader_->CommitLoaded("factorjoin", "global",
                              artifact.value().timestamp);
      }
    }
  }

  // Only the grown table's cached actuals go stale; drift windows keep
  // accumulating across delta publishes (OnIncrementalPublish, not
  // OnSnapshotPublished).
  if (feedback_owned_ != nullptr) {
    feedback_owned_->OnIncrementalPublish(delta.table, version);
  }
  incremental_->RecordPublish(timer.ElapsedSeconds(), delta);
  return version;
}

Result<MonitorReport> ByteCard::ProbeTable(const minihouse::Table& table) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  std::shared_ptr<const EstimatorSnapshot> current = snapshot_.Acquire();
  const cardest::BnInferenceContext* context =
      current == nullptr ? nullptr : current->bn_context(table.name());
  if (context == nullptr) {
    return Status::NotFound("no BN model for table '" + table.name() + "'");
  }
  BC_ASSIGN_OR_RETURN(MonitorReport report,
                      monitor_.EvaluateBnModel(table, *context));
  // Demotion/promotion path: publish a successor only when the verdict
  // differs from what the live snapshot serves.
  if (current->IsHealthy(table.name()) != report.healthy) {
    SnapshotBuilder builder(current, &validator_);
    builder.SetHealth(table.name(), report.healthy);
    // Demotion also retires every mined route that touches the drifted
    // table — those scores were measured against the now-distrusted model.
    if (!report.healthy && current->routing_table() != nullptr) {
      BC_RETURN_IF_ERROR(builder.SetRoutingTable(
          current->routing_table()->WithoutTable(table.name())));
    }
    BC_ASSIGN_OR_RETURN(std::shared_ptr<const EstimatorSnapshot> snapshot,
                        builder.Finish());
    const uint64_t version = snapshot->version();
    snapshot_.Publish(std::move(snapshot));
    if (feedback_owned_ != nullptr) {
      feedback_owned_->OnSnapshotPublished(version);
      feedback_owned_->OnTableHealthChanged(table.name());
    }
  }
  return report;
}

void ByteCard::SetTableHealth(const std::string& table, bool healthy) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  monitor_.SetHealth(table, healthy);
  std::shared_ptr<const EstimatorSnapshot> current = snapshot_.Acquire();
  if (current != nullptr && current->IsHealthy(table) == healthy) return;
  SnapshotBuilder builder(current, &validator_);
  builder.SetHealth(table, healthy);
  // Health demotion retires mined routes over the demoted table (their
  // scores trusted the model being pulled); promotions keep routes as-is.
  if (!healthy && current != nullptr &&
      current->routing_table() != nullptr) {
    Status routed = builder.SetRoutingTable(
        current->routing_table()->WithoutTable(table));
    if (!routed.ok()) {
      BC_LOG(Warning) << "route retirement for '" << table
                      << "' failed: " << routed.ToString();
    }
  }
  Result<std::shared_ptr<const EstimatorSnapshot>> snapshot =
      builder.Finish();
  if (!snapshot.ok()) {
    BC_LOG(Warning) << "health publish for '" << table
                    << "' failed: " << snapshot.status().ToString();
    return;
  }
  const uint64_t version = snapshot.value()->version();
  snapshot_.Publish(std::move(snapshot).value());
  if (feedback_owned_ != nullptr) {
    feedback_owned_->OnSnapshotPublished(version);
    feedback_owned_->OnTableHealthChanged(table);
  }
}

Result<routing::RouteMinerReport> ByteCard::MineRoutes(
    const minihouse::Database& db, routing::RouteMinerOptions options) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  feedback::FeedbackManager* manager =
      feedback_.load(std::memory_order_acquire);
  if (manager == nullptr) {
    return Status::InvalidArgument(
        "MineRoutes requires feedback collection (EnableFeedback)");
  }
  std::shared_ptr<const EstimatorSnapshot> current = snapshot_.Acquire();
  if (current == nullptr) {
    return Status::Internal("MineRoutes requires a published snapshot");
  }

  const std::vector<minihouse::QueryFeedback> trace =
      manager->log().Snapshot();
  routing::RouteMinerReport report;
  BC_ASSIGN_OR_RETURN(
      std::shared_ptr<const routing::RoutingTable> mined,
      routing::RouteMiner(options).Mine(trace, *current, db, &report));

  SnapshotBuilder builder(current, &validator_);
  BC_RETURN_IF_ERROR(builder.SetRoutingTable(std::move(mined)));
  BC_ASSIGN_OR_RETURN(std::shared_ptr<const EstimatorSnapshot> snapshot,
                      builder.Finish());
  snapshot_.Publish(std::move(snapshot));
  // Deliberately no OnSnapshotPublished: only the dispatch policy changed,
  // every model is byte-identical, so the feedback cache's actuals stay
  // valid for the successor.
  return report;
}

std::shared_ptr<minihouse::CardinalityEstimator> ByteCard::PinSnapshot() {
  return std::make_shared<SnapshotEstimator>(
      snapshot_.Acquire(), feedback_.load(std::memory_order_acquire));
}

std::vector<ByteCard::FeedbackAction> ByteCard::ProcessFeedback(
    const minihouse::Database* db) {
  std::vector<FeedbackAction> actions;
  feedback::FeedbackManager* manager =
      feedback_.load(std::memory_order_acquire);
  if (manager == nullptr) return actions;
  std::shared_ptr<const EstimatorSnapshot> current = snapshot_.Acquire();
  for (const feedback::DriftReport& report : manager->drift().Reports()) {
    if (!report.drifted) continue;
    FeedbackAction action;
    action.report = report;
    // Demote only tables whose learned model is actually live and healthy —
    // a table already on the fallback has nothing left to demote, and a
    // table without a BN never served learned estimates.
    if (current != nullptr && current->bn_context(report.table) != nullptr &&
        current->IsHealthy(report.table)) {
      SetTableHealth(report.table, false);
      action.demoted = true;
      if (db != nullptr) {
        Result<const minihouse::Table*> table = db->FindTable(report.table);
        if (table.ok()) {
          action.retrain_started = RetrainTable(*table.value()).ok();
        }
      }
    }
    actions.push_back(std::move(action));
  }
  return actions;
}

uint64_t ByteCard::SnapshotVersion() const {
  std::shared_ptr<const EstimatorSnapshot> current = snapshot_.Acquire();
  return current == nullptr ? 0 : current->version();
}

double ByteCard::Estimate(const cardest::CardEstRequest& request,
                          cardest::InferenceSession* session) {
  std::shared_ptr<const EstimatorSnapshot> snap = snapshot_.Acquire();
  if (snap == nullptr) {
    return request.target == cardest::CardEstTarget::kDisjunction ? 0.0 : 1.0;
  }
  return snap->Estimate(request, session);
}

double ByteCard::EstimateCountDisjunction(
    const minihouse::Table& table,
    const std::vector<minihouse::Conjunction>& disjuncts) {
  return Estimate(cardest::CardEstRequest::Disjunction(table, disjuncts),
                  nullptr);
}

const cardest::BnInferenceContext* ByteCard::bn_context(
    const std::string& table) const {
  std::shared_ptr<const EstimatorSnapshot> snap = snapshot_.Acquire();
  return snap == nullptr ? nullptr : snap->bn_context(table);
}

const cardest::FactorJoinModel& ByteCard::factorjoin_model() const {
  std::shared_ptr<const EstimatorSnapshot> snap = snapshot_.Acquire();
  BC_CHECK(snap != nullptr && snap->fj_engine() != nullptr)
      << "no FactorJoin model published";
  return snap->fj_engine()->model();
}

const RbxNdvEngine& ByteCard::rbx_engine() const {
  std::shared_ptr<const EstimatorSnapshot> snap = snapshot_.Acquire();
  BC_CHECK(snap != nullptr && snap->rbx_engine() != nullptr)
      << "no RBX model published";
  return *snap->rbx_engine();
}

double ByteCard::EstimateSelectivity(const minihouse::Table& table,
                                     const minihouse::Conjunction& filters) {
  return Estimate(cardest::CardEstRequest::Selectivity(table, filters),
                  nullptr);
}

double ByteCard::EstimateJoinCardinality(const minihouse::BoundQuery& query,
                                         const std::vector<int>& subset) {
  return Estimate(cardest::CardEstRequest::JoinCount(query, subset), nullptr);
}

double ByteCard::EstimateCount(const minihouse::BoundQuery& query) {
  return Estimate(cardest::CardEstRequest::Count(query), nullptr);
}

double ByteCard::EstimateColumnNdv(const minihouse::Table& table, int column,
                                   const minihouse::Conjunction& filters) {
  return Estimate(cardest::CardEstRequest::ColumnNdv(table, column, filters),
                  nullptr);
}

double ByteCard::EstimateGroupNdv(const minihouse::BoundQuery& query) {
  return Estimate(cardest::CardEstRequest::GroupNdv(query), nullptr);
}

}  // namespace bytecard
