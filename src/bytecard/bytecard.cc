#include "bytecard/bytecard.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "bytecard/model_loader.h"
#include "bytecard/model_preprocessor.h"
#include "common/logging.h"

namespace bytecard {

ByteCard::ByteCard(Options options)
    : options_(std::move(options)), monitor_(options_.monitor) {}

Result<std::unique_ptr<ByteCard>> ByteCard::Bootstrap(
    const minihouse::Database& db,
    const std::vector<minihouse::BoundQuery>& workload_hint,
    const std::string& storage_dir, const Options& options) {
  std::unique_ptr<ByteCard> bc(new ByteCard(options));
  bc->storage_dir_ = storage_dir;
  bc->loader_ = std::make_unique<ModelLoader>(storage_dir);
  ModelForgeService forge(storage_dir);
  ModelLoader& loader = *bc->loader_;

  // 1. Model Preprocessor: join-pattern collection from the workload hint.
  const std::vector<std::vector<cardest::JoinKeyRef>> join_patterns =
      ModelPreprocessor::CollectJoinPatterns(workload_hint);

  // 2. FactorJoin bucket construction first — BN training needs its
  // boundaries so join-column bins coincide with join buckets.
  BC_ASSIGN_OR_RETURN(
      ModelArtifact fj_artifact,
      forge.TrainFactorJoin(db, join_patterns, options.join_buckets));
  bc->training_stats_.factorjoin_seconds = fj_artifact.train_seconds;
  bc->training_stats_.factorjoin_bytes = fj_artifact.size_bytes;
  bc->training_stats_.artifacts.push_back(fj_artifact);

  bc->fj_engine_ = std::make_unique<FactorJoinEngine>(&bc->bn_contexts_);
  {
    BC_ASSIGN_OR_RETURN(std::vector<LoadedModel> loaded, loader.PollOnce());
    for (const LoadedModel& model : loaded) {
      if (model.kind == "factorjoin") {
        BC_RETURN_IF_ERROR(bc->fj_engine_->LoadModel(model.bytes));
      }
    }
  }

  // 3. Routine per-table BN training through the forge.
  for (const std::string& name : db.TableNames()) {
    const minihouse::Table* table = db.FindTable(name).value();
    if (table->num_rows() == 0) continue;

    const cardest::BnTrainOptions bn_options = bc->DeriveBnOptions(*table);
    if (bn_options.columns.empty()) continue;
    BC_ASSIGN_OR_RETURN(ModelArtifact artifact,
                        forge.TrainTableBn(*table, bn_options));
    bc->training_stats_.bn_seconds += artifact.train_seconds;
    bc->training_stats_.bn_bytes += artifact.size_bytes;
    bc->training_stats_.artifacts.push_back(artifact);
  }

  // 4. Model Loader pickup + Validator admission + InitContext for BNs.
  {
    BC_ASSIGN_OR_RETURN(std::vector<LoadedModel> loaded, loader.PollOnce());
    for (const LoadedModel& model : loaded) {
      if (model.kind != "bn") continue;
      auto engine = std::make_unique<BnCountEngine>();
      BC_RETURN_IF_ERROR(engine->LoadModel(model.bytes));
      BC_RETURN_IF_ERROR(
          bc->validator_.Admit("bn/" + model.name, *engine, nullptr));
      BC_RETURN_IF_ERROR(engine->InitContext());
      bc->bn_contexts_[model.name] = engine->context();
      bc->bn_engines_[model.name] = std::move(engine);
    }
  }
  BC_RETURN_IF_ERROR(
      bc->validator_.Admit("factorjoin/global", *bc->fj_engine_, nullptr));
  BC_RETURN_IF_ERROR(bc->fj_engine_->InitContext());

  // 5. RBX: reuse a pre-trained workload-independent artifact when given,
  // otherwise run the one-off offline training.
  bc->rbx_engine_ = std::make_unique<RbxNdvEngine>();
  std::string rbx_bytes;
  if (!options.pretrained_rbx_path.empty()) {
    BC_ASSIGN_OR_RETURN(rbx_bytes,
                        ReadArtifactBytes(options.pretrained_rbx_path));
  } else {
    cardest::RbxTrainOptions rbx_options = options.rbx;
    rbx_options.seed = options.seed ^ 0x5bd1e995;
    BC_ASSIGN_OR_RETURN(ModelArtifact artifact,
                        forge.TrainRbx(rbx_options));
    bc->training_stats_.rbx_seconds = artifact.train_seconds;
    bc->training_stats_.artifacts.push_back(artifact);
    BC_ASSIGN_OR_RETURN(rbx_bytes, ReadArtifactBytes(artifact.path));
  }
  BC_RETURN_IF_ERROR(bc->rbx_engine_->LoadModel(rbx_bytes));
  bc->training_stats_.rbx_bytes = bc->rbx_engine_->ModelSizeBytes();
  BC_RETURN_IF_ERROR(
      bc->validator_.Admit("rbx/global", *bc->rbx_engine_, nullptr));
  BC_RETURN_IF_ERROR(bc->rbx_engine_->InitContext());

  // RBX was installed directly from the forge's artifact (not via a loader
  // poll); advance the loader's high-water marks so the next RefreshModels
  // only reacts to genuinely newer artifacts.
  BC_RETURN_IF_ERROR(loader.PollOnce().status());

  // 6. Per-table samples for RBX featurization (§5.2.1).
  {
    Rng rng(options.seed ^ 0x9e3779b9);
    for (const std::string& name : db.TableNames()) {
      const minihouse::Table* table = db.FindTable(name).value();
      bc->samples_[name] = stats::TableSample::Build(
          *table, options.sample_rate, options.sample_max_rows, &rng);
    }
  }

  // 7. Traditional fallback sketches (ByteHouse keeps these regardless).
  if (options.build_fallback_sketches) {
    bc->fallback_statistics_ = stats::SketchStatistics::Build(db, 64);
    bc->fallback_ = std::make_unique<stats::SketchEstimator>(
        bc->fallback_statistics_.get());
  }

  // 8. Model Monitor probing of each single-table model.
  if (options.run_monitor) {
    for (const auto& [name, context] : bc->bn_contexts_) {
      const minihouse::Table* table = db.FindTable(name).value();
      Result<MonitorReport> report =
          bc->monitor_.EvaluateBnModel(*table, *context);
      if (!report.ok()) bc->monitor_.SetHealth(name, false);
    }
  }
  return bc;
}

cardest::BnTrainOptions ByteCard::DeriveBnOptions(
    const minihouse::Table& table) const {
  cardest::BnTrainOptions bn_options;
  bn_options.columns = ModelPreprocessor::SelectedColumns(table);
  bn_options.max_bins = options_.bn_max_bins;
  bn_options.max_train_rows = options_.bn_max_train_rows;
  bn_options.seed = options_.seed;
  if (fj_engine_ != nullptr) {
    for (int c : bn_options.columns) {
      Result<std::vector<int64_t>> boundaries =
          fj_engine_->model().BoundariesFor(table.name(), c);
      if (boundaries.ok()) {
        bn_options.join_column_boundaries[c] = std::move(boundaries).value();
      }
    }
  }
  return bn_options;
}

Result<int> ByteCard::RefreshModels() {
  if (loader_ == nullptr) {
    return Status::Internal("ByteCard was not bootstrapped with a store");
  }
  BC_ASSIGN_OR_RETURN(std::vector<LoadedModel> loaded, loader_->PollOnce());
  int applied = 0;
  for (const LoadedModel& model : loaded) {
    if (model.kind == "bn") {
      auto engine = std::make_unique<BnCountEngine>();
      BC_RETURN_IF_ERROR(engine->LoadModel(model.bytes));
      BC_RETURN_IF_ERROR(
          validator_.Admit("bn/" + model.name, *engine, nullptr));
      BC_RETURN_IF_ERROR(engine->InitContext());
      bn_contexts_[model.name] = engine->context();
      bn_engines_[model.name] = std::move(engine);
      ++applied;
    } else if (model.kind == "factorjoin") {
      BC_RETURN_IF_ERROR(fj_engine_->LoadModel(model.bytes));
      BC_RETURN_IF_ERROR(
          validator_.Admit("factorjoin/global", *fj_engine_, nullptr));
      BC_RETURN_IF_ERROR(fj_engine_->InitContext());
      ++applied;
    } else if (model.kind == "rbx") {
      BC_RETURN_IF_ERROR(rbx_engine_->LoadModel(model.bytes));
      BC_RETURN_IF_ERROR(
          validator_.Admit("rbx/global", *rbx_engine_, nullptr));
      BC_RETURN_IF_ERROR(rbx_engine_->InitContext());
      ++applied;
    }
  }
  return applied;
}

Status ByteCard::RetrainTable(const minihouse::Table& table) {
  if (storage_dir_.empty()) {
    return Status::Internal("ByteCard was not bootstrapped with a store");
  }
  const cardest::BnTrainOptions bn_options = DeriveBnOptions(table);
  if (bn_options.columns.empty()) {
    return Status::InvalidArgument("table '" + table.name() +
                                   "' has no trainable columns");
  }
  ModelForgeService forge(storage_dir_);
  BC_ASSIGN_OR_RETURN(ModelArtifact artifact,
                      forge.TrainTableBn(table, bn_options));
  training_stats_.bn_seconds += artifact.train_seconds;
  training_stats_.artifacts.push_back(std::move(artifact));
  return Status::Ok();
}

Result<MonitorReport> ByteCard::ProbeTable(const minihouse::Table& table) {
  const cardest::BnInferenceContext* context = bn_context(table.name());
  if (context == nullptr) {
    return Status::NotFound("no BN model for table '" + table.name() + "'");
  }
  return monitor_.EvaluateBnModel(table, *context);
}

double ByteCard::EstimateCountDisjunction(
    const minihouse::Table& table,
    const std::vector<minihouse::Conjunction>& disjuncts) {
  // Inclusion-exclusion over all non-empty disjunct subsets. |D| is small in
  // practice (OR lists in analytical filters); cap keeps this bounded.
  const int n = static_cast<int>(disjuncts.size());
  if (n == 0) return 0.0;
  BC_CHECK(n <= 16) << "inclusion-exclusion over too many disjuncts";

  double selectivity = 0.0;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    minihouse::Conjunction merged;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        merged.insert(merged.end(), disjuncts[i].begin(),
                      disjuncts[i].end());
      }
    }
    const double term = EstimateSelectivity(table, merged);
    selectivity += (__builtin_popcount(mask) % 2 == 1) ? term : -term;
  }
  selectivity = std::clamp(selectivity, 0.0, 1.0);
  return selectivity * static_cast<double>(table.num_rows());
}

const cardest::BnInferenceContext* ByteCard::bn_context(
    const std::string& table) const {
  auto it = bn_contexts_.find(table);
  return it == bn_contexts_.end() ? nullptr : it->second;
}

double ByteCard::EstimateSelectivity(const minihouse::Table& table,
                                     const minihouse::Conjunction& filters) {
  const cardest::BnInferenceContext* context = bn_context(table.name());
  if (context != nullptr && monitor_.IsHealthy(table.name())) {
    validator_.Touch("bn/" + table.name());
    return context->EstimateSelectivity(filters);
  }
  if (fallback_ != nullptr) {
    return fallback_->EstimateSelectivity(table, filters);
  }
  return 1.0;
}

double ByteCard::EstimateJoinCardinality(const minihouse::BoundQuery& query,
                                         const std::vector<int>& subset) {
  if (subset.size() == 1) {
    const minihouse::BoundTableRef& ref = query.tables[subset[0]];
    return EstimateSelectivity(*ref.table, ref.filters) *
           static_cast<double>(ref.table->num_rows());
  }
  // Unhealthy single-table models poison join estimates too; fall back to
  // the traditional estimator for the whole join in that case.
  for (int t : subset) {
    if (!monitor_.IsHealthy(query.tables[t].table->name())) {
      if (fallback_ != nullptr) {
        return fallback_->EstimateJoinCardinality(query, subset);
      }
      break;
    }
  }
  validator_.Touch("factorjoin/global");
  FeatureVector features;
  features.query = query;
  features.table_subset = subset;
  Result<double> estimate = fj_engine_->Estimate(features);
  if (!estimate.ok()) {
    return fallback_ != nullptr
               ? fallback_->EstimateJoinCardinality(query, subset)
               : 1.0;
  }
  return estimate.value();
}

double ByteCard::EstimateCount(const minihouse::BoundQuery& query) {
  std::vector<int> all(query.num_tables());
  std::iota(all.begin(), all.end(), 0);
  return EstimateJoinCardinality(query, all);
}

double ByteCard::EstimateColumnNdv(const minihouse::Table& table, int column,
                                   const minihouse::Conjunction& filters) {
  auto it = samples_.find(table.name());
  if (it == samples_.end() || it->second.num_rows() == 0) {
    return 1.0;
  }
  const stats::TableSample& sample = it->second;

  // Featurization: filter the in-memory sample, then build the
  // sample-profile over the surviving key values.
  const std::vector<uint8_t> selection = sample.Matches(filters);
  std::vector<int64_t> values;
  for (int64_t i = 0; i < sample.num_rows(); ++i) {
    if (selection[i] != 0) values.push_back(sample.column(column)[i]);
  }
  if (values.empty()) return 1.0;

  // Population under the filters comes from the COUNT model.
  const double filtered_rows =
      EstimateSelectivity(table, filters) *
      static_cast<double>(table.num_rows());
  stats::SampleFrequencies frequencies = stats::ComputeFrequencies(
      values, std::max<int64_t>(1, static_cast<int64_t>(filtered_rows)));

  validator_.Touch("rbx/global");
  const FeatureVector features = rbx_engine_->FeaturizeSample(frequencies);
  Result<double> estimate = rbx_engine_->Estimate(features);
  if (!estimate.ok()) {
    return std::max(1.0, stats::GeeEstimate(frequencies));
  }
  return estimate.value();
}

double ByteCard::EstimateGroupNdv(const minihouse::BoundQuery& query) {
  if (query.group_by.empty()) return 1.0;
  double ndv = 1.0;
  for (const minihouse::GroupKeyRef& g : query.group_by) {
    const minihouse::BoundTableRef& ref = query.tables[g.table];
    ndv *= std::max(1.0,
                    EstimateColumnNdv(*ref.table, g.column, ref.filters));
  }
  std::vector<int> all(query.num_tables());
  std::iota(all.begin(), all.end(), 0);
  const double rows = EstimateJoinCardinality(query, all);
  return std::max(1.0, std::min(ndv, rows));
}

}  // namespace bytecard
