#include "bytecard/model_preprocessor.h"

#include <algorithm>
#include <map>

namespace bytecard {

minihouse::MlType ModelPreprocessor::MapType(minihouse::DataType type) {
  switch (type) {
    case minihouse::DataType::kInt64:
    case minihouse::DataType::kString:
      return minihouse::MlType::kCategorical;
    case minihouse::DataType::kFloat64:
      return minihouse::MlType::kContinuous;
    case minihouse::DataType::kArray:
      return minihouse::MlType::kUnsupported;
  }
  return minihouse::MlType::kUnsupported;
}

std::vector<ColumnModelInfo> ModelPreprocessor::AnalyzeCatalog(
    const minihouse::Database& db) {
  std::vector<ColumnModelInfo> info;
  for (const std::string& name : db.TableNames()) {
    const minihouse::Table* table = db.FindTable(name).value();
    for (int c = 0; c < table->num_columns(); ++c) {
      ColumnModelInfo row;
      row.table = name;
      row.column = c;
      row.column_name = table->schema().column(c).name;
      row.ml_type = MapType(table->schema().column(c).type);
      row.selected = row.ml_type != minihouse::MlType::kUnsupported;
      info.push_back(std::move(row));
    }
  }
  return info;
}

std::vector<int> ModelPreprocessor::SelectedColumns(
    const minihouse::Table& table) {
  std::vector<int> columns;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (MapType(table.schema().column(c).type) !=
        minihouse::MlType::kUnsupported) {
      columns.push_back(c);
    }
  }
  return columns;
}

std::vector<std::vector<cardest::JoinKeyRef>>
ModelPreprocessor::CollectJoinPatterns(
    const std::vector<minihouse::BoundQuery>& queries) {
  // Union-find over join keys observed across the workload.
  std::map<cardest::JoinKeyRef, int> index;
  std::vector<int> parent;

  auto find_or_add = [&](const cardest::JoinKeyRef& key) {
    auto [it, inserted] = index.try_emplace(key, parent.size());
    if (inserted) parent.push_back(static_cast<int>(parent.size()));
    return it->second;
  };
  auto find_root = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (const minihouse::BoundQuery& query : queries) {
    for (const minihouse::JoinEdge& e : query.joins) {
      const cardest::JoinKeyRef left{
          query.tables[e.left_table].table->name(), e.left_column};
      const cardest::JoinKeyRef right{
          query.tables[e.right_table].table->name(), e.right_column};
      const int a = find_or_add(left);
      const int b = find_or_add(right);
      parent[find_root(a)] = find_root(b);
    }
  }

  std::map<int, std::vector<cardest::JoinKeyRef>> groups;
  for (const auto& [key, idx] : index) {
    groups[find_root(idx)].push_back(key);
  }
  std::vector<std::vector<cardest::JoinKeyRef>> out;
  out.reserve(groups.size());
  for (auto& [_, members] : groups) {
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  return out;
}

}  // namespace bytecard
