#ifndef BYTECARD_COMMON_RNG_H_
#define BYTECARD_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bytecard {

// Deterministic 64-bit RNG (splitmix64-seeded xoshiro256**). Every data
// generator and training routine in the repository takes an explicit seed so
// that benchmark rows are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // Derive an independent child generator (for parallel-safe sub-streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_gauss_ = false;
  double gauss_cache_ = 0.0;
};

// Samples from {0, .., n-1} with Zipf(skew) popularity: P(k) ~ 1/(k+1)^skew.
// Precomputes the CDF once; Sample() is O(log n).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double skew);

  uint64_t Sample(Rng* rng) const;
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace bytecard

#endif  // BYTECARD_COMMON_RNG_H_
