#ifndef BYTECARD_COMMON_STATUS_H_
#define BYTECARD_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace bytecard {

// Error categories used across the library. The set is deliberately small:
// callers branch on "did it work", and on a handful of recoverable classes
// (e.g. kNotFound for missing model artifacts, kInvalidModel for artifacts
// that fail validation).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kInvalidModel,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

// Lightweight status object (no exceptions are used in this codebase).
// Functions that can fail return Status or Result<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status InvalidModel(std::string msg) {
    return Status(StatusCode::kInvalidModel, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> is either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  // Implicit construction from values and from Status keeps call sites terse:
  //   Result<int> F() { if (bad) return Status::InvalidArgument("..."); return 7; }
  Result(T value) : data_(std::move(value)) {}            // NOLINT
  Result(Status status) : data_(std::move(status)) {}     // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(data_);
  }

  // Precondition: ok(). Checked by CHECK in debug usage via callers.
  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

#define BC_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::bytecard::Status _bc_status = (expr);     \
    if (!_bc_status.ok()) return _bc_status;    \
  } while (false)

#define BC_INTERNAL_CONCAT_IMPL(a, b) a##b
#define BC_INTERNAL_CONCAT(a, b) BC_INTERNAL_CONCAT_IMPL(a, b)

#define BC_ASSIGN_OR_RETURN(lhs, rexpr) \
  BC_ASSIGN_OR_RETURN_IMPL(BC_INTERNAL_CONCAT(_bc_result_, __LINE__), lhs, rexpr)

#define BC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

}  // namespace bytecard

#endif  // BYTECARD_COMMON_STATUS_H_
