#ifndef BYTECARD_COMMON_STOPWATCH_H_
#define BYTECARD_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace bytecard {

// Monotonic wall-clock stopwatch used by the latency benches and by the
// training-time reports (Tables 3 and 6).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bytecard

#endif  // BYTECARD_COMMON_STOPWATCH_H_
