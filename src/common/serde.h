#ifndef BYTECARD_COMMON_SERDE_H_
#define BYTECARD_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace bytecard {

// Binary serialization used for model artifacts. Every learned model
// serializes to a byte buffer via BufferWriter and is reconstructed via
// BufferReader; the ModelForge service writes these buffers to the artifact
// store and the Model Loader reads them back. Little-endian, fixed-width.
class BufferWriter {
 public:
  BufferWriter() = default;

  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { AppendRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    AppendRaw(s.data(), s.size());
  }

  void WriteDoubleVec(const std::vector<double>& v) {
    WriteU64(v.size());
    AppendRaw(v.data(), v.size() * sizeof(double));
  }

  void WriteI64Vec(const std::vector<int64_t>& v) {
    WriteU64(v.size());
    AppendRaw(v.data(), v.size() * sizeof(int64_t));
  }

  void WriteU32Vec(const std::vector<uint32_t>& v) {
    WriteU64(v.size());
    AppendRaw(v.data(), v.size() * sizeof(uint32_t));
  }

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  void AppendRaw(const void* data, size_t n) {
    buffer_.append(static_cast<const char*>(data), n);
  }

  std::string buffer_;
};

// Reader side; all Read* methods fail cleanly (Status) on truncated input so
// that the Model Validator can reject corrupt artifacts without crashing.
class BufferReader {
 public:
  explicit BufferReader(const std::string& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}
  BufferReader(const char* data, size_t size) : data_(data), size_(size) {}

  Status ReadU32(uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU64(uint64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadI64(int64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadDouble(double* out) { return ReadRaw(out, sizeof(*out)); }

  Status ReadString(std::string* out);
  Status ReadDoubleVec(std::vector<double>* out);
  Status ReadI64Vec(std::vector<int64_t>* out);
  Status ReadU32Vec(std::vector<uint32_t>* out);

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status ReadRaw(void* out, size_t n) {
    if (pos_ + n > size_) {
      return Status::OutOfRange("buffer truncated");
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace bytecard

#endif  // BYTECARD_COMMON_SERDE_H_
