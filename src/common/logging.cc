#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/status.h"

namespace bytecard {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  const char* name = "UNKNOWN";
  switch (code_) {
    case StatusCode::kOk:
      name = "OK";
      break;
    case StatusCode::kInvalidArgument:
      name = "INVALID_ARGUMENT";
      break;
    case StatusCode::kNotFound:
      name = "NOT_FOUND";
      break;
    case StatusCode::kAlreadyExists:
      name = "ALREADY_EXISTS";
      break;
    case StatusCode::kOutOfRange:
      name = "OUT_OF_RANGE";
      break;
    case StatusCode::kInvalidModel:
      name = "INVALID_MODEL";
      break;
    case StatusCode::kResourceExhausted:
      name = "RESOURCE_EXHAUSTED";
      break;
    case StatusCode::kInternal:
      name = "INTERNAL";
      break;
    case StatusCode::kUnimplemented:
      name = "UNIMPLEMENTED";
      break;
  }
  return std::string(name) + ": " + message_;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace bytecard
