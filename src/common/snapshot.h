#ifndef BYTECARD_COMMON_SNAPSHOT_H_
#define BYTECARD_COMMON_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace bytecard::common {

// RCU-style single-writer/many-reader publication cell.
//
// Readers call Acquire() to pin the current value for as long as they hold
// the returned shared_ptr; writers build a complete successor value
// off-thread and install it with one Publish() (an atomic release store).
// Superseded values drain naturally: the last reader holding a pin frees
// them. Readers never block writers and writers never block readers; there
// is no reader-side locking and no torn state — a reader either sees the
// whole old value or the whole new one.
//
// T is expected to be immutable after publication; Acquire() hands out
// const access only.
template <typename T>
class VersionedHandle {
 public:
  using Ptr = std::shared_ptr<const T>;

  VersionedHandle() = default;
  explicit VersionedHandle(Ptr initial) : current_(std::move(initial)) {}

  VersionedHandle(const VersionedHandle&) = delete;
  VersionedHandle& operator=(const VersionedHandle&) = delete;

  // Pins the current value. May return null before the first Publish.
  Ptr Acquire() const { return current_.load(std::memory_order_acquire); }

  // Installs `next` as the current value. Callers serialize publication
  // among themselves (single logical writer); readers need no coordination.
  void Publish(Ptr next) {
    current_.store(std::move(next), std::memory_order_release);
  }

 private:
  std::atomic<Ptr> current_;
};

}  // namespace bytecard::common

#endif  // BYTECARD_COMMON_SNAPSHOT_H_
