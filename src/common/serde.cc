#include "common/serde.h"

namespace bytecard {

namespace {
// Refuse absurd element counts up front: a truncated or corrupt artifact must
// not trigger a multi-gigabyte allocation inside the Model Loader.
constexpr uint64_t kMaxElements = 1ULL << 32;
}  // namespace

Status BufferReader::ReadString(std::string* out) {
  uint64_t n = 0;
  BC_RETURN_IF_ERROR(ReadU64(&n));
  if (n > remaining()) return Status::OutOfRange("string truncated");
  out->assign(data_ + pos_, n);
  pos_ += n;
  return Status::Ok();
}

Status BufferReader::ReadDoubleVec(std::vector<double>* out) {
  uint64_t n = 0;
  BC_RETURN_IF_ERROR(ReadU64(&n));
  if (n > kMaxElements || n * sizeof(double) > remaining()) {
    return Status::OutOfRange("double vector truncated");
  }
  out->resize(n);
  return ReadRaw(out->data(), n * sizeof(double));
}

Status BufferReader::ReadI64Vec(std::vector<int64_t>* out) {
  uint64_t n = 0;
  BC_RETURN_IF_ERROR(ReadU64(&n));
  if (n > kMaxElements || n * sizeof(int64_t) > remaining()) {
    return Status::OutOfRange("i64 vector truncated");
  }
  out->resize(n);
  return ReadRaw(out->data(), n * sizeof(int64_t));
}

Status BufferReader::ReadU32Vec(std::vector<uint32_t>* out) {
  uint64_t n = 0;
  BC_RETURN_IF_ERROR(ReadU64(&n));
  if (n > kMaxElements || n * sizeof(uint32_t) > remaining()) {
    return Status::OutOfRange("u32 vector truncated");
  }
  out->resize(n);
  return ReadRaw(out->data(), n * sizeof(uint32_t));
}

}  // namespace bytecard
