#ifndef BYTECARD_COMMON_LOGGING_H_
#define BYTECARD_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace bytecard {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Stream-style log sink. FATAL aborts in the destructor.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) { return *this; }
};

}  // namespace internal_logging

#define BC_LOG(level)                                                         \
  if (::bytecard::LogLevel::k##level < ::bytecard::GetLogLevel())             \
    ;                                                                         \
  else                                                                        \
    ::bytecard::internal_logging::LogMessage(::bytecard::LogLevel::k##level,  \
                                             __FILE__, __LINE__)              \
        .stream()

// CHECK aborts on violated invariants (programmer errors, not data errors).
#define BC_CHECK(cond)                                                        \
  if (!(cond))                                                                \
  ::bytecard::internal_logging::LogMessage(::bytecard::LogLevel::kFatal,      \
                                           __FILE__, __LINE__)                \
          .stream()                                                           \
      << "Check failed: " #cond " "

#define BC_CHECK_OK(expr)                                                     \
  if (::bytecard::Status _bc_st = (expr); !_bc_st.ok())                       \
  ::bytecard::internal_logging::LogMessage(::bytecard::LogLevel::kFatal,      \
                                           __FILE__, __LINE__)                \
          .stream()                                                           \
      << "Status not OK: " << _bc_st.ToString()

#define BC_DCHECK(cond) BC_CHECK(cond)

}  // namespace bytecard

#endif  // BYTECARD_COMMON_LOGGING_H_
