#ifndef BYTECARD_COMMON_BLOOM_H_
#define BYTECARD_COMMON_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bytecard {

// Split-block Bloom filter over int64 keys. Used by the executor's sideways
// information passing (paper §3.1.2 lists SIP among ByteHouse's classical
// optimization strategies): the build side of a join publishes its key set
// so probe-side scans can drop non-joining rows — and whole blocks — early.
class BloomFilter {
 public:
  // Sized for `expected_keys` at ~10 bits/key (false-positive rate ~1%).
  explicit BloomFilter(int64_t expected_keys) {
    int64_t bits = expected_keys * 10;
    if (bits < 1024) bits = 1024;
    words_.assign(static_cast<size_t>((bits + 63) / 64), 0);
  }

  void Add(int64_t key) {
    const auto [h1, h2] = Hashes(key);
    for (int i = 0; i < kProbes; ++i) {
      const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % NumBits();
      words_[bit >> 6] |= 1ULL << (bit & 63);
    }
  }

  bool MayContain(int64_t key) const {
    const auto [h1, h2] = Hashes(key);
    for (int i = 0; i < kProbes; ++i) {
      const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % NumBits();
      if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
    }
    return true;
  }

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(words_.size() * sizeof(uint64_t));
  }

 private:
  static constexpr int kProbes = 7;

  uint64_t NumBits() const { return words_.size() * 64; }

  static std::pair<uint64_t, uint64_t> Hashes(int64_t key) {
    uint64_t x = static_cast<uint64_t>(key);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    // Second hash must be odd so the probe stride never collapses.
    return {x, (x >> 17) | 1ULL};
  }

  std::vector<uint64_t> words_;
};

}  // namespace bytecard

#endif  // BYTECARD_COMMON_BLOOM_H_
