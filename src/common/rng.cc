#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bytecard {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  BC_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  BC_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_cache_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_cache_ = r * std::sin(theta);
  has_gauss_ = true;
  return r * std::cos(theta);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd3f1e2c4b5a69788ULL); }

ZipfDistribution::ZipfDistribution(uint64_t n, double skew) : n_(n) {
  BC_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace bytecard
