#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "common/logging.h"

namespace bytecard::common {

namespace {
thread_local bool t_on_worker_thread = false;
}  // namespace

ThreadPool::ThreadPool(int num_workers, int heavy_cap) {
  num_workers = std::max(0, num_workers);
  // Default cap: half the workers, floored at one, so a saturated heavy lane
  // leaves at least one worker (on pools of >= 2) drained exclusively from
  // the fast queue.
  heavy_cap_ = heavy_cap >= 0 ? heavy_cap : std::max(1, num_workers / 2);
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task,
                                     TaskLane lane) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    BC_CHECK(!stop_);
    if (lane == TaskLane::kHeavy) {
      heavy_queue_.push_back(
          HeavyTask{std::move(packaged), std::chrono::steady_clock::now()});
    } else {
      fast_queue_.push_back(std::move(packaged));
    }
  }
  cv_.notify_one();
  return future;
}

int64_t ThreadPool::queued(TaskLane lane) const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lane == TaskLane::kHeavy ? heavy_queue_.size()
                                                       : fast_queue_.size());
}

int ThreadPool::heavy_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heavy_running_;
}

int64_t ThreadPool::heavy_promotions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heavy_promotions_;
}

bool ThreadPool::HeavyFrontAgedLocked() const {
  const int64_t promote_ms = promote_ms_.load(std::memory_order_relaxed);
  if (promote_ms <= 0 || heavy_queue_.empty()) return false;
  return std::chrono::steady_clock::now() - heavy_queue_.front().enqueued >=
         std::chrono::milliseconds(promote_ms);
}

void ThreadPool::WorkerLoop() {
  t_on_worker_thread = true;
  for (;;) {
    std::packaged_task<void()> task;
    bool heavy = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return !fast_queue_.empty() ||
               (!heavy_queue_.empty() && heavy_running_ < heavy_cap_) || stop_;
      });
      // Fast lane drains first; heavy tasks run only under the cap. Aging is
      // the one exception to fast-first: a heavy head that waited past the
      // promotion threshold is taken ahead of queued fast work — still under
      // the cap, so a saturating fast stream cannot starve the heavy lane
      // forever, yet promotion never widens heavy concurrency. On stop, keep
      // draining both queues so every submitted future completes —
      // destruction never abandons work.
      if (!stop_ && heavy_running_ < heavy_cap_ && HeavyFrontAgedLocked()) {
        task = std::move(heavy_queue_.front().task);
        heavy_queue_.pop_front();
        heavy = true;
        ++heavy_running_;
        ++heavy_promotions_;
      } else if (!fast_queue_.empty()) {
        task = std::move(fast_queue_.front());
        fast_queue_.pop_front();
      } else if (!heavy_queue_.empty() && (heavy_running_ < heavy_cap_ || stop_)) {
        task = std::move(heavy_queue_.front().task);
        heavy_queue_.pop_front();
        heavy = true;
        ++heavy_running_;
      } else {
        return;  // stop_ with both queues drained
      }
    }
    task();
    if (heavy) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        --heavy_running_;
      }
      // A heavy slot opened up; another worker may now take a heavy task.
      cv_.notify_one();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  // Workers = budget - 1: the caller participating in ParallelMorsels is the
  // remaining drainer.
  static ThreadPool pool(std::max(HardwareParallelism(), kDefaultMaxDop) - 1);
  return pool;
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

int HardwareParallelism() {
  static const int n = [] {
    if (const char* env = std::getenv("BYTECARD_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) return std::min(v, 256);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return n;
}

namespace {

// Shared state of one fan-out. Helpers and the caller pull morsels from
// `next`; `closed` flips once the caller has drained everything, telling
// helpers that have not started yet to abandon without running `fn`.
struct MorselDrainState {
  explicit MorselDrainState(int64_t morsel_count) : count(morsel_count) {}

  const int64_t count;
  std::atomic<int64_t> next{0};
  std::mutex mu;
  std::condition_variable cv;
  int started = 0;  // helpers that began draining (caller waits for these)
  int finished = 0;
  bool closed = false;
};

}  // namespace

void ParallelMorsels(ThreadPool& pool, int64_t morsel_count, int dop,
                     const MorselPolicy& policy,
                     const std::function<void(int64_t, int)>& fn) {
  if (morsel_count <= 0) return;
  dop = static_cast<int>(std::min<int64_t>(dop, morsel_count));
  // The caller is always one drainer; never submit more helpers than the
  // pool has workers (on a worker-less pool those tasks would sit queued
  // until the pool is destroyed).
  dop = std::min(dop, pool.num_workers() + 1);
  int helpers = dop - 1;
  // Per-query budget: every helper beyond the caller costs one token. A
  // drained budget degrades to inline — the query still progresses on its
  // own thread, it just stops fanning out.
  if (helpers > 0 && policy.budget != nullptr) {
    helpers = policy.budget->TryAcquire(helpers);
  }
  if (helpers <= 0) {
    for (int64_t m = 0; m < morsel_count; ++m) fn(m, 0);
    return;
  }

  auto state = std::make_shared<MorselDrainState>(morsel_count);
  auto drain = [&fn, state](int slot) {
    for (int64_t m; (m = state->next.fetch_add(
                         1, std::memory_order_relaxed)) < state->count;) {
      fn(m, slot);
    }
  };
  for (int slot = 1; slot <= helpers; ++slot) {
    // Helper futures are deliberately dropped: completion is tracked through
    // the shared state so the caller never blocks on a helper that hasn't
    // started (that wait could deadlock when the caller itself occupies a
    // pool worker). `fn` outlives every *started* helper because the caller
    // below waits for started == finished before returning; a helper that
    // finds the fan-out closed touches only `state` (shared ownership), so
    // it may safely run after the caller — and the whole query — are gone.
    pool.Submit(
        [drain, state, slot] {
          {
            std::lock_guard<std::mutex> lock(state->mu);
            if (state->closed) return;
            ++state->started;
          }
          drain(slot);
          {
            std::lock_guard<std::mutex> lock(state->mu);
            ++state->finished;
          }
          state->cv.notify_all();
        },
        policy.lane);
  }

  drain(0);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->closed = true;
    state->cv.wait(lock,
                   [&state] { return state->finished == state->started; });
  }
  // Fan-outs within a query are sequential, so returning the whole grant
  // here (rather than per-helper) is equivalent — and it keeps abandoned
  // helpers from ever touching the per-query budget after the query died.
  if (policy.budget != nullptr) policy.budget->Release(helpers);
}

void ParallelMorsels(ThreadPool& pool, int64_t morsel_count, int dop,
                     const std::function<void(int64_t, int)>& fn) {
  ParallelMorsels(pool, morsel_count, dop, MorselPolicy{}, fn);
}

void ParallelMorsels(int64_t morsel_count, int dop,
                     const std::function<void(int64_t, int)>& fn) {
  ParallelMorsels(ThreadPool::Global(), morsel_count, dop, fn);
}

}  // namespace bytecard::common
