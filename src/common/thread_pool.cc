#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/logging.h"

namespace bytecard::common {

namespace {
thread_local bool t_on_worker_thread = false;
}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  num_workers = std::max(0, num_workers);
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    BC_CHECK(!stop_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  t_on_worker_thread = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  // Workers = budget - 1: the caller participating in ParallelMorsels is the
  // remaining drainer.
  static ThreadPool pool(std::max(HardwareParallelism(), kDefaultMaxDop) - 1);
  return pool;
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

int HardwareParallelism() {
  static const int n = [] {
    if (const char* env = std::getenv("BYTECARD_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) return std::min(v, 256);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return n;
}

void ParallelMorsels(ThreadPool& pool, int64_t morsel_count, int dop,
                     const std::function<void(int64_t, int)>& fn) {
  if (morsel_count <= 0) return;
  dop = std::min<int64_t>(dop, morsel_count);
  // The caller is always one drainer; never submit more helpers than the
  // pool has workers (on a worker-less pool those tasks would never run and
  // the future joins below would deadlock).
  dop = std::min(dop, pool.num_workers() + 1);
  if (dop <= 1 || ThreadPool::OnWorkerThread()) {
    for (int64_t m = 0; m < morsel_count; ++m) fn(m, 0);
    return;
  }

  std::atomic<int64_t> next{0};
  auto drain = [&](int slot) {
    for (int64_t m;
         (m = next.fetch_add(1, std::memory_order_relaxed)) < morsel_count;) {
      fn(m, slot);
    }
  };
  std::vector<std::future<void>> futures;
  futures.reserve(dop - 1);
  for (int slot = 1; slot < dop; ++slot) {
    futures.push_back(pool.Submit([&drain, slot] { drain(slot); }));
  }
  drain(0);
  for (std::future<void>& f : futures) f.get();
}

void ParallelMorsels(int64_t morsel_count, int dop,
                     const std::function<void(int64_t, int)>& fn) {
  ParallelMorsels(ThreadPool::Global(), morsel_count, dop, fn);
}

}  // namespace bytecard::common
