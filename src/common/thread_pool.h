#ifndef BYTECARD_COMMON_THREAD_POOL_H_
#define BYTECARD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace bytecard::common {

// Fixed-size worker pool shared engine-wide: one FIFO queue, workers block on
// a condition variable, no work stealing. Tasks are plain void() callables;
// Submit returns a future the caller waits on. The pool is deliberately
// minimal — the executor's parallelism comes from ParallelMorsels below,
// which keeps the *calling* thread as one of the drainers so progress never
// depends on a free worker.
class ThreadPool {
 public:
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  std::future<void> Submit(std::function<void()> task);

  // The engine-wide shared pool, created on first use. Sized from
  // BYTECARD_THREADS when set (CI pins worker counts this way), otherwise
  // max(hardware threads, kDefaultMaxDop) so that explicit dop requests up
  // to the Fig 5 sweep's 8 overlap storage waits even on small machines.
  static ThreadPool& Global();

  // True on a thread currently executing a pool task. ParallelMorsels uses
  // this to degrade nested fan-out to inline execution instead of
  // deadlocking on a saturated queue.
  static bool OnWorkerThread();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Highest dop the optimizer hands out without an explicit override, and the
// floor for the global pool's concurrency (callers may request up to this
// even on machines reporting fewer hardware threads).
inline constexpr int kDefaultMaxDop = 8;

// Configured parallelism budget: the BYTECARD_THREADS override when set,
// otherwise std::thread::hardware_concurrency(). Always >= 1. This is what
// the optimizer treats as "one machine's worth" of threads.
int HardwareParallelism();

// Morsel-driven drain: runs fn(morsel, slot) for every morsel in
// [0, morsel_count), with up to `dop` concurrent drainers pulling morsels
// from a shared counter. The calling thread is drainer slot 0; slots
// 1..dop-1 run on `pool`. Returns after every morsel completed (the caller's
// writes in fn happen-before the return). dop <= 1, a single morsel, or a
// call from inside a pool task all run inline on the caller.
void ParallelMorsels(ThreadPool& pool, int64_t morsel_count, int dop,
                     const std::function<void(int64_t, int)>& fn);

// Same, on the global pool.
void ParallelMorsels(int64_t morsel_count, int dop,
                     const std::function<void(int64_t, int)>& fn);

}  // namespace bytecard::common

#endif  // BYTECARD_COMMON_THREAD_POOL_H_
