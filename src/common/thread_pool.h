#ifndef BYTECARD_COMMON_THREAD_POOL_H_
#define BYTECARD_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace bytecard::common {

// Which dispatch queue a task lands in. The scheduler classifies whole
// queries from their estimated intermediate cardinalities; every task a
// query spawns (the query itself plus its morsel helpers) inherits the
// query's lane.
enum class TaskLane {
  kFast = 0,   // point queries and their morsels: drained first, never capped
  kHeavy = 1,  // big estimated intermediates: at most heavy_cap workers
};

// Per-query cap on concurrent pool helpers: a token bucket the query's
// ParallelMorsels calls draw from before submitting helper tasks. The
// calling thread never needs a token (a query always progresses on its own
// thread), so a budget of 0 degrades that query to serial execution without
// ever blocking it — which is exactly how a heavy join is kept from
// occupying every worker while point queries wait.
class MorselBudget {
 public:
  // Effectively "no cap" — larger than any dop the optimizer hands out.
  static constexpr int kUnlimited = 1 << 20;

  explicit MorselBudget(int tokens = kUnlimited) : available_(tokens) {}

  MorselBudget(const MorselBudget&) = delete;
  MorselBudget& operator=(const MorselBudget&) = delete;

  // Re-arms the bucket; only valid while no helpers are outstanding.
  void Reset(int tokens) {
    available_.store(tokens, std::memory_order_relaxed);
  }

  // Grabs up to `want` tokens; returns how many were granted (possibly 0).
  int TryAcquire(int want) {
    int have = available_.load(std::memory_order_relaxed);
    while (have > 0) {
      const int take = want < have ? want : have;
      if (available_.compare_exchange_weak(have, have - take,
                                           std::memory_order_acq_rel)) {
        return take;
      }
    }
    return 0;
  }

  void Release(int n) { available_.fetch_add(n, std::memory_order_acq_rel); }

  int available() const { return available_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int> available_;
};

// How one ParallelMorsels fan-out is scheduled: the lane its helper tasks
// are queued on and the query's helper budget (null = unbudgeted). A
// default-constructed policy reproduces the pre-scheduler behaviour — fast
// lane, no cap.
struct MorselPolicy {
  TaskLane lane = TaskLane::kFast;
  MorselBudget* budget = nullptr;
};

// Fixed-size worker pool shared engine-wide, organized as a two-lane queued
// dispatcher: every task is submitted to the fast or the heavy lane. Workers
// always drain the fast lane first, and at most `heavy_cap` workers run
// heavy-lane tasks concurrently, so heavy queries queue behind each other
// instead of occupying the whole pool — the remaining workers stay available
// to point queries no matter how deep the heavy backlog grows.
//
// Tasks are plain void() callables; Submit returns a future the caller may
// wait on. The pool is deliberately minimal — the executor's parallelism
// comes from ParallelMorsels below, which keeps the *calling* thread as one
// of the drainers so progress never depends on a free worker.
class ThreadPool {
 public:
  // `heavy_cap` < 0 picks the default: half the workers, floored at one, so
  // a saturated heavy lane can never take the last fast-lane worker (pools
  // with >= 2 workers).
  explicit ThreadPool(int num_workers, int heavy_cap = -1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }
  int heavy_cap() const { return heavy_cap_; }

  std::future<void> Submit(std::function<void()> task,
                           TaskLane lane = TaskLane::kFast);

  // Tasks currently queued (not yet started) on `lane`.
  int64_t queued(TaskLane lane) const;
  // Workers currently executing a heavy-lane task.
  int heavy_running() const;

  // Priority aging: once the heavy queue's head has waited at least this
  // long, the next free worker takes it ahead of the fast queue. Promotion
  // bypasses only the fast-first rule — the heavy concurrency cap still
  // holds, so promotion changes *when* a starved heavy task starts, never
  // how many run at once. 0 (the default) disables aging.
  void set_heavy_promote_after_millis(int64_t millis) {
    promote_ms_.store(millis, std::memory_order_relaxed);
  }
  int64_t heavy_promote_after_millis() const {
    return promote_ms_.load(std::memory_order_relaxed);
  }
  // Heavy tasks that started via aging promotion (ahead of queued fast work).
  int64_t heavy_promotions() const;

  // The engine-wide shared pool, created on first use. Sized from
  // BYTECARD_THREADS when set (CI pins worker counts this way), otherwise
  // max(hardware threads, kDefaultMaxDop) so that explicit dop requests up
  // to the Fig 5 sweep's 8 overlap storage waits even on small machines.
  static ThreadPool& Global();

  // True on a thread currently executing a pool task.
  static bool OnWorkerThread();

 private:
  // Heavy-lane queue element: the task plus its enqueue time, so the aging
  // check can age the head without any per-tick bookkeeping.
  struct HeavyTask {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();
  // True when aging is enabled, a heavy task is queued, and its head has
  // waited past the promotion threshold. Requires mu_ held.
  bool HeavyFrontAgedLocked() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> fast_queue_;
  std::deque<HeavyTask> heavy_queue_;
  int heavy_running_ = 0;
  int heavy_cap_ = 1;
  bool stop_ = false;
  std::atomic<int64_t> promote_ms_{0};
  int64_t heavy_promotions_ = 0;  // guarded by mu_
  std::vector<std::thread> workers_;
};

// Highest dop the optimizer hands out without an explicit override, and the
// floor for the global pool's concurrency (callers may request up to this
// even on machines reporting fewer hardware threads).
inline constexpr int kDefaultMaxDop = 8;

// Configured parallelism budget: the BYTECARD_THREADS override when set,
// otherwise std::thread::hardware_concurrency(). Always >= 1. This is what
// the optimizer treats as "one machine's worth" of threads.
int HardwareParallelism();

// Morsel-driven drain: runs fn(morsel, slot) for every morsel in
// [0, morsel_count), with up to `dop` concurrent drainers pulling morsels
// from a shared counter. The calling thread is drainer slot 0; slots
// 1..dop-1 are *helper* tasks submitted to `pool` on policy.lane, gated by
// policy.budget. Returns after every morsel completed (the caller's writes
// in fn happen-before the return).
//
// Helpers are abandonable: one that has not started by the time the caller
// finishes draining simply returns when it eventually runs, and the caller
// never waits for it. The caller therefore blocks only on helpers that
// actually began work — so fanning out from *inside* a pool task is safe
// (no nested-submit deadlock: worst case every helper is abandoned and the
// calling task drains all morsels itself).
//
// dop <= 1, a single morsel, an exhausted budget, or a worker-less pool all
// run inline on the caller.
void ParallelMorsels(ThreadPool& pool, int64_t morsel_count, int dop,
                     const MorselPolicy& policy,
                     const std::function<void(int64_t, int)>& fn);

// Same, with the default policy (fast lane, unbudgeted).
void ParallelMorsels(ThreadPool& pool, int64_t morsel_count, int dop,
                     const std::function<void(int64_t, int)>& fn);

// Same, on the global pool.
void ParallelMorsels(int64_t morsel_count, int dop,
                     const std::function<void(int64_t, int)>& fn);

}  // namespace bytecard::common

#endif  // BYTECARD_COMMON_THREAD_POOL_H_
