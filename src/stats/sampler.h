#ifndef BYTECARD_STATS_SAMPLER_H_
#define BYTECARD_STATS_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "minihouse/predicate.h"
#include "minihouse/table.h"

namespace bytecard::stats {

// A uniform row sample of one table, materialized column-wise in numeric
// domain. Used by the sample-based estimator (which evaluates predicates on
// it at estimation time — the real cost the paper attributes to AnalyticDB-
// style estimation) and by the RBX featurization path (the paper's
// DataFrame-style in-memory sample).
class TableSample {
 public:
  TableSample() = default;

  // Draws floor(rate * rows) rows without replacement (at least 1 if the
  // table is non-empty and rate > 0), capped at `max_rows`.
  static TableSample Build(const minihouse::Table& table, double rate,
                           int64_t max_rows, Rng* rng);

  int64_t num_rows() const { return num_rows_; }
  int64_t table_rows() const { return table_rows_; }
  double rate() const {
    return table_rows_ == 0
               ? 0.0
               : static_cast<double>(num_rows_) / static_cast<double>(table_rows_);
  }

  // Sampled values of schema column `c` (numeric domain).
  const std::vector<int64_t>& column(int c) const { return columns_[c]; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  // Evaluates a conjunction on the sample; returns matching sample-row count.
  int64_t CountMatches(const minihouse::Conjunction& filters) const;

  // Selection vector over sample rows for a conjunction.
  std::vector<uint8_t> Matches(const minihouse::Conjunction& filters) const;

 private:
  int64_t num_rows_ = 0;
  int64_t table_rows_ = 0;
  std::vector<std::vector<int64_t>> columns_;
};

}  // namespace bytecard::stats

#endif  // BYTECARD_STATS_SAMPLER_H_
