#ifndef BYTECARD_STATS_HYPERLOGLOG_H_
#define BYTECARD_STATS_HYPERLOGLOG_H_

#include <cstdint>
#include <vector>

#include "common/serde.h"

namespace bytecard::stats {

// HyperLogLog distinct-count sketch (Flajolet et al. 2007, with the linear-
// counting small-range correction from Heule et al. 2013). This is the
// sketch-based NDV baseline the paper's ByteHouse used before RBX; its known
// weakness — no guarantees under predicates/sampling, staleness under
// updates — is exactly what Figure 6b exploits.
class HyperLogLog {
 public:
  // `precision` p gives 2^p registers; standard error ~ 1.04 / sqrt(2^p).
  explicit HyperLogLog(int precision = 12);

  // Both return true when a register grew — i.e. the observation changed the
  // sketch state. Callers that cache derived values (the incremental
  // maintainer's per-bucket distinct counts) use this to skip recomputing
  // Estimate() on the steady-state path where most values are re-sightings.
  bool AddHash(uint64_t hash);
  bool Add(int64_t value) { return AddHash(Mix(static_cast<uint64_t>(value))); }

  double Estimate() const;

  // Merges another sketch built with the same precision; true when any
  // register grew.
  bool Merge(const HyperLogLog& other);

  int precision() const { return precision_; }

  void Serialize(BufferWriter* writer) const;
  static Result<HyperLogLog> Deserialize(BufferReader* reader);

 private:
  static uint64_t Mix(uint64_t x);

  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace bytecard::stats

#endif  // BYTECARD_STATS_HYPERLOGLOG_H_
