#include "stats/hyperloglog.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace bytecard::stats {

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  BC_CHECK(precision >= 4 && precision <= 18);
  registers_.assign(size_t{1} << precision, 0);
}

uint64_t HyperLogLog::Mix(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool HyperLogLog::AddHash(uint64_t hash) {
  const uint64_t index = hash >> (64 - precision_);
  const uint64_t rest = hash << precision_;
  // Rank = position of the leftmost 1-bit in the remaining bits (1-based).
  const int rank =
      rest == 0 ? (64 - precision_ + 1) : (std::countl_zero(rest) + 1);
  if (static_cast<uint8_t>(rank) <= registers_[index]) return false;
  registers_[index] = static_cast<uint8_t>(rank);
  return true;
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  if (registers_.size() == 16) {
    alpha = 0.673;
  } else if (registers_.size() == 32) {
    alpha = 0.697;
  } else if (registers_.size() == 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }

  // 2^-r lookup: ranks are at most 64 - precision + 1 <= 61, and ldexp in
  // the register loop is the hot spot when Estimate runs per ingest batch.
  static const std::array<double, 64> kPow2Neg = [] {
    std::array<double, 64> t{};
    for (int i = 0; i < 64; ++i) t[i] = std::ldexp(1.0, -i);
    return t;
  }();
  double sum = 0.0;
  int64_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += kPow2Neg[r];
    if (r == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;

  // Small-range correction: linear counting.
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

bool HyperLogLog::Merge(const HyperLogLog& other) {
  BC_CHECK(precision_ == other.precision_);
  bool changed = false;
  for (size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
      changed = true;
    }
  }
  return changed;
}

void HyperLogLog::Serialize(BufferWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(precision_));
  writer->WriteU64(registers_.size());
  for (uint8_t r : registers_) writer->WriteU32(r);
}

Result<HyperLogLog> HyperLogLog::Deserialize(BufferReader* reader) {
  uint32_t precision = 0;
  BC_RETURN_IF_ERROR(reader->ReadU32(&precision));
  if (precision < 4 || precision > 18) {
    return Status::InvalidModel("bad HLL precision");
  }
  HyperLogLog hll(static_cast<int>(precision));
  uint64_t n = 0;
  BC_RETURN_IF_ERROR(reader->ReadU64(&n));
  if (n != (uint64_t{1} << precision)) {
    return Status::InvalidModel("HLL register count mismatch");
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t r = 0;
    BC_RETURN_IF_ERROR(reader->ReadU32(&r));
    hll.registers_[i] = static_cast<uint8_t>(r);
  }
  return hll;
}

}  // namespace bytecard::stats
