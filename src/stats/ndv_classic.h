#ifndef BYTECARD_STATS_NDV_CLASSIC_H_
#define BYTECARD_STATS_NDV_CLASSIC_H_

#include <cstdint>
#include <vector>

namespace bytecard::stats {

// Frequency counts of a sample: freq[i] = f_{i+1} = number of distinct
// values occurring exactly i+1 times in the sample. The shared input of
// every sample-scale-up NDV estimator (and of RBX's frequency profile).
struct SampleFrequencies {
  std::vector<int64_t> freq;  // f_1, f_2, ...
  int64_t sample_size = 0;    // n
  int64_t population_size = 0;  // N

  int64_t sample_distinct() const {
    int64_t d = 0;
    for (int64_t f : freq) d += f;
    return d;
  }
};

// Builds frequency counts from raw sampled values.
SampleFrequencies ComputeFrequencies(const std::vector<int64_t>& sample,
                                     int64_t population_size);

// Chao (1984) lower-bound estimator: d + f1^2 / (2 f2).
double ChaoEstimate(const SampleFrequencies& s);

// Guaranteed-Error Estimator (Charikar et al. 2000): d + (sqrt(N/n) - 1) f1.
double GeeEstimate(const SampleFrequencies& s);

// Naive scale-up: d * N / n (assumes every unseen row adds distinct mass
// proportionally). The weakest heuristic; included as a baseline floor.
double ScaleUpEstimate(const SampleFrequencies& s);

// Shlosser (1981) estimator, strong under skew; the usual heuristic choice
// for Bernoulli samples with rate q = n/N.
double ShlosserEstimate(const SampleFrequencies& s);

}  // namespace bytecard::stats

#endif  // BYTECARD_STATS_NDV_CLASSIC_H_
