#include "stats/sampler.h"

#include <algorithm>

#include "common/logging.h"

namespace bytecard::stats {

TableSample TableSample::Build(const minihouse::Table& table, double rate,
                               int64_t max_rows, Rng* rng) {
  TableSample sample;
  sample.table_rows_ = table.num_rows();
  if (table.num_rows() == 0 || rate <= 0.0) return sample;

  int64_t want = static_cast<int64_t>(rate * static_cast<double>(table.num_rows()));
  want = std::clamp<int64_t>(want, 1, std::min(max_rows, table.num_rows()));

  // Floyd's algorithm would avoid the permutation, but table sizes here are
  // modest; a partial Fisher-Yates over row ids keeps it simple and exact.
  std::vector<int64_t> rows(table.num_rows());
  for (int64_t i = 0; i < table.num_rows(); ++i) rows[i] = i;
  for (int64_t i = 0; i < want; ++i) {
    const int64_t j =
        i + static_cast<int64_t>(rng->Uniform(table.num_rows() - i));
    std::swap(rows[i], rows[j]);
  }
  rows.resize(want);
  std::sort(rows.begin(), rows.end());

  sample.num_rows_ = want;
  sample.columns_.resize(table.num_columns());
  for (int c = 0; c < table.num_columns(); ++c) {
    if (table.schema().column(c).type == minihouse::DataType::kArray) {
      continue;  // complex types stay unsampled (unsupported by estimators)
    }
    auto& dst = sample.columns_[c];
    dst.reserve(want);
    const minihouse::Column& col = table.column(c);
    for (int64_t r : rows) dst.push_back(col.NumericAt(r));
  }
  return sample;
}

int64_t TableSample::CountMatches(
    const minihouse::Conjunction& filters) const {
  int64_t count = 0;
  for (int64_t i = 0; i < num_rows_; ++i) {
    bool pass = true;
    for (const minihouse::ColumnPredicate& pred : filters) {
      if (!pred.Matches(columns_[pred.column][i])) {
        pass = false;
        break;
      }
    }
    if (pass) ++count;
  }
  return count;
}

std::vector<uint8_t> TableSample::Matches(
    const minihouse::Conjunction& filters) const {
  std::vector<uint8_t> sel(num_rows_, 1);
  for (const minihouse::ColumnPredicate& pred : filters) {
    const auto& col = columns_[pred.column];
    for (int64_t i = 0; i < num_rows_; ++i) {
      if (sel[i] != 0 && !pred.Matches(col[i])) sel[i] = 0;
    }
  }
  return sel;
}

}  // namespace bytecard::stats
