#include "stats/traditional_estimator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "stats/ndv_classic.h"

namespace bytecard::stats {

namespace {

using minihouse::BoundQuery;
using minihouse::Conjunction;
using minihouse::DataType;
using minihouse::JoinEdge;
using minihouse::Table;

bool InSubset(const std::vector<int>& subset, int t) {
  return std::find(subset.begin(), subset.end(), t) != subset.end();
}

}  // namespace

// ---------------------------------------------------------------------------
// SketchStatistics
// ---------------------------------------------------------------------------

std::unique_ptr<SketchStatistics> SketchStatistics::Build(
    const minihouse::Database& db, int histogram_buckets) {
  auto stats = std::make_unique<SketchStatistics>();
  for (const std::string& name : db.TableNames()) {
    const Table* table = db.FindTable(name).value();
    TableStats ts;
    ts.rows = table->num_rows();
    ts.histograms.resize(table->num_columns());
    ts.ndv.resize(table->num_columns(), 0.0);
    for (int c = 0; c < table->num_columns(); ++c) {
      if (table->schema().column(c).type == DataType::kArray) continue;
      const minihouse::Column& col = table->column(c);
      ts.histograms[c] = EquiHeightHistogram::Build(col, histogram_buckets);
      HyperLogLog hll;
      for (int64_t i = 0; i < col.num_rows(); ++i) hll.Add(col.NumericAt(i));
      ts.ndv[c] = hll.Estimate();
    }
    stats->tables_[name] = std::move(ts);
  }
  return stats;
}

const EquiHeightHistogram* SketchStatistics::FindHistogram(
    const std::string& table, int column) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return nullptr;
  if (column < 0 || column >= static_cast<int>(it->second.histograms.size())) {
    return nullptr;
  }
  return &it->second.histograms[column];
}

double SketchStatistics::ColumnNdv(const std::string& table,
                                   int column) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return 1.0;
  if (column < 0 || column >= static_cast<int>(it->second.ndv.size())) {
    return 1.0;
  }
  return std::max(1.0, it->second.ndv[column]);
}

int64_t SketchStatistics::TableRows(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.rows;
}

// ---------------------------------------------------------------------------
// SketchEstimator
// ---------------------------------------------------------------------------

double SketchEstimator::EstimateSelectivity(const Table& table,
                                            const Conjunction& filters) {
  // Attribute-value independence: multiply per-column selectivities.
  double sel = 1.0;
  for (const minihouse::ColumnPredicate& pred : filters) {
    const EquiHeightHistogram* hist =
        statistics_->FindHistogram(table.name(), pred.column);
    sel *= hist == nullptr || hist->empty() ? 1.0 : hist->Selectivity(pred);
  }
  // Zone-map tier (DESIGN.md §12): block min/max stamped at Seal bound the
  // conjunction's selectivity from above at zero estimator cost. On
  // clustered columns this catches exactly the histogram's blind spot —
  // cross-block correlation of physical layout with the predicate range.
  sel = std::min(sel, minihouse::ZoneMapSelectivityBound(table, filters));
  return std::clamp(sel, 0.0, 1.0);
}

double SketchEstimator::EstimateJoinCardinality(
    const BoundQuery& query, const std::vector<int>& subset) {
  double card = 1.0;
  for (int t : subset) {
    const Table& table = *query.tables[t].table;
    card *= static_cast<double>(table.num_rows()) *
            EstimateSelectivity(table, query.tables[t].filters);
  }
  // Join uniformity + key inclusion: each edge divides by max side NDV.
  for (const JoinEdge& e : query.joins) {
    if (!InSubset(subset, e.left_table) || !InSubset(subset, e.right_table)) {
      continue;
    }
    const double ndv_left = statistics_->ColumnNdv(
        query.tables[e.left_table].table->name(), e.left_column);
    const double ndv_right = statistics_->ColumnNdv(
        query.tables[e.right_table].table->name(), e.right_column);
    card /= std::max(1.0, std::max(ndv_left, ndv_right));
  }
  return std::max(card, 0.0);
}

double SketchEstimator::EstimateGroupNdv(const BoundQuery& query) {
  if (query.group_by.empty()) return 1.0;
  // Precomputed full-column NDVs; predicates are ignored (the sketch store
  // has no way to condition on them), capped by the estimated output size.
  double ndv = 1.0;
  for (const minihouse::GroupKeyRef& g : query.group_by) {
    ndv *= statistics_->ColumnNdv(query.tables[g.table].table->name(),
                                  g.column);
  }
  std::vector<int> all(query.num_tables());
  for (int i = 0; i < query.num_tables(); ++i) all[i] = i;
  const double rows = EstimateJoinCardinality(query, all);
  return std::max(1.0, std::min(ndv, rows));
}

// ---------------------------------------------------------------------------
// SampleEstimator
// ---------------------------------------------------------------------------

SampleEstimator::SampleEstimator(const minihouse::Database& db, double rate,
                                 int64_t max_rows, uint64_t seed) {
  Rng rng(seed);
  for (const std::string& name : db.TableNames()) {
    const Table* table = db.FindTable(name).value();
    samples_[name] = TableSample::Build(*table, rate, max_rows, &rng);
  }
}

const TableSample* SampleEstimator::FindSample(
    const std::string& table) const {
  auto it = samples_.find(table);
  return it == samples_.end() ? nullptr : &it->second;
}

double SampleEstimator::EstimateSelectivity(const Table& table,
                                            const Conjunction& filters) {
  const TableSample* sample = FindSample(table.name());
  if (sample == nullptr || sample->num_rows() == 0) return 1.0;
  const int64_t matches = sample->CountMatches(filters);
  if (matches == 0) {
    // Classic small-sample failure: zero matches cannot mean zero rows.
    // Assume half a row matched.
    return 0.5 / static_cast<double>(sample->num_rows());
  }
  return static_cast<double>(matches) /
         static_cast<double>(sample->num_rows());
}

double SampleEstimator::EstimateJoinCardinality(
    const BoundQuery& query, const std::vector<int>& subset) {
  // Selinger shape, but all inputs measured on the samples: selectivities
  // from sample predicate evaluation, join-key NDVs from sample distincts
  // scaled up with GEE.
  double card = 1.0;
  for (int t : subset) {
    const Table& table = *query.tables[t].table;
    card *= static_cast<double>(table.num_rows()) *
            EstimateSelectivity(table, query.tables[t].filters);
  }
  for (const JoinEdge& e : query.joins) {
    if (!InSubset(subset, e.left_table) || !InSubset(subset, e.right_table)) {
      continue;
    }
    auto key_ndv = [&](int t, int c) {
      const TableSample* sample =
          FindSample(query.tables[t].table->name());
      if (sample == nullptr || sample->num_rows() == 0) return 1.0;
      const SampleFrequencies freqs = ComputeFrequencies(
          sample->column(c), query.tables[t].table->num_rows());
      return std::max(1.0, GeeEstimate(freqs));
    };
    const double ndv_left = key_ndv(e.left_table, e.left_column);
    const double ndv_right = key_ndv(e.right_table, e.right_column);
    card /= std::max(1.0, std::max(ndv_left, ndv_right));
  }
  return std::max(card, 0.0);
}

double SampleEstimator::EstimateGroupNdv(const BoundQuery& query) {
  if (query.group_by.empty()) return 1.0;
  double ndv = 1.0;
  for (const minihouse::GroupKeyRef& g : query.group_by) {
    const auto& ref = query.tables[g.table];
    const TableSample* sample = FindSample(ref.table->name());
    if (sample == nullptr || sample->num_rows() == 0) continue;
    // Filter the sample with this table's predicates, then scale the
    // surviving distinct count with GEE over the filtered population.
    const std::vector<uint8_t> sel = sample->Matches(ref.filters);
    std::vector<int64_t> values;
    for (int64_t i = 0; i < sample->num_rows(); ++i) {
      if (sel[i] != 0) values.push_back(sample->column(g.column)[i]);
    }
    if (values.empty()) continue;
    const double match_fraction =
        static_cast<double>(values.size()) /
        static_cast<double>(sample->num_rows());
    const int64_t population = std::max<int64_t>(
        1, static_cast<int64_t>(match_fraction *
                                static_cast<double>(ref.table->num_rows())));
    const SampleFrequencies freqs = ComputeFrequencies(values, population);
    ndv *= std::max(1.0, GeeEstimate(freqs));
  }
  std::vector<int> all(query.num_tables());
  for (int i = 0; i < query.num_tables(); ++i) all[i] = i;
  const double rows = EstimateJoinCardinality(query, all);
  return std::max(1.0, std::min(ndv, rows));
}

}  // namespace bytecard::stats
