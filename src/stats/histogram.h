#ifndef BYTECARD_STATS_HISTOGRAM_H_
#define BYTECARD_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "minihouse/column.h"
#include "minihouse/predicate.h"

namespace bytecard::stats {

// Equi-height histogram over a column's numeric domain — the Selinger-style
// sketch ByteHouse's original optimizer used, and also the bucket source for
// FactorJoin's join-bucket construction (paper §4.2).
//
// Estimation assumptions (deliberately, these are the weaknesses Table 1
// demonstrates): values are uniform within a bucket, distinct values within a
// bucket are equally frequent, and columns are mutually independent.
class EquiHeightHistogram {
 public:
  struct Bucket {
    int64_t lo = 0;        // inclusive
    int64_t hi = 0;        // inclusive
    int64_t count = 0;     // rows in bucket
    int64_t distinct = 0;  // distinct values in bucket
  };

  EquiHeightHistogram() = default;

  // Builds from every row of `column` (a full-scan sketch, as in the paper's
  // precomputed-statistics setup).
  static EquiHeightHistogram Build(const minihouse::Column& column,
                                   int num_buckets);

  // Builds from an explicit value multiset (used for sampled builds).
  static EquiHeightHistogram BuildFromValues(std::vector<int64_t> values,
                                             int num_buckets);

  // Estimated fraction of rows satisfying `pred`, in [0, 1].
  double Selectivity(const minihouse::ColumnPredicate& pred) const;

  int64_t total_rows() const { return total_rows_; }
  int64_t total_distinct() const { return total_distinct_; }
  const std::vector<Bucket>& buckets() const { return buckets_; }
  bool empty() const { return buckets_.empty(); }

  // Bucket boundaries as a sorted vector of inclusive upper bounds (used by
  // the FactorJoin join-bucket construction).
  std::vector<int64_t> UpperBounds() const;

  void Serialize(BufferWriter* writer) const;
  static Result<EquiHeightHistogram> Deserialize(BufferReader* reader);

 private:
  double EqFraction(int64_t value) const;
  double LeFraction(int64_t value) const;  // fraction with v <= value

  std::vector<Bucket> buckets_;
  int64_t total_rows_ = 0;
  int64_t total_distinct_ = 0;
};

}  // namespace bytecard::stats

#endif  // BYTECARD_STATS_HISTOGRAM_H_
