#ifndef BYTECARD_STATS_TRADITIONAL_ESTIMATOR_H_
#define BYTECARD_STATS_TRADITIONAL_ESTIMATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "minihouse/database.h"
#include "minihouse/optimizer.h"
#include "stats/histogram.h"
#include "stats/hyperloglog.h"
#include "stats/sampler.h"

namespace bytecard::stats {

// Precomputed per-column sketches for a whole catalog: equi-height histogram
// plus an HLL distinct count for every model-visible column. This is the
// statistics store of ByteHouse's original Selinger-style optimizer.
class SketchStatistics {
 public:
  static std::unique_ptr<SketchStatistics> Build(
      const minihouse::Database& db, int histogram_buckets);

  const EquiHeightHistogram* FindHistogram(const std::string& table,
                                           int column) const;
  double ColumnNdv(const std::string& table, int column) const;
  int64_t TableRows(const std::string& table) const;

 private:
  struct TableStats {
    int64_t rows = 0;
    std::vector<EquiHeightHistogram> histograms;  // per column
    std::vector<double> ndv;                      // per column
  };
  std::map<std::string, TableStats> tables_;
};

// The sketch-based traditional estimator (ByteHouse's inherent method in the
// paper's Figure 5): per-column histograms with attribute independence, and
// the Selinger join-uniformity formula |R||S| / max(ndv_R, ndv_S) per edge.
// Group NDV comes from precomputed HLL counts and is *not* adjusted for
// filter predicates — the structural weakness §5.2 calls out.
class SketchEstimator : public minihouse::CardinalityEstimator {
 public:
  explicit SketchEstimator(const SketchStatistics* statistics)
      : statistics_(statistics) {}

  std::string Name() const override { return "sketch"; }

  double EstimateSelectivity(const minihouse::Table& table,
                             const minihouse::Conjunction& filters) override;
  double EstimateJoinCardinality(const minihouse::BoundQuery& query,
                                 const std::vector<int>& subset) override;
  double EstimateGroupNdv(const minihouse::BoundQuery& query) override;

 private:
  const SketchStatistics* statistics_;
};

// The sample-based estimator (the paper's AnalyticDB-like comparator):
// maintains a uniform row sample per table and evaluates the query's
// predicates on it at estimation time. More adaptive than sketches (captures
// cross-column correlation inside the sample) but pays real per-estimate
// compute — the overhead visible at the low latency quantiles of Figure 5.
class SampleEstimator : public minihouse::CardinalityEstimator {
 public:
  // `rate`: sampling fraction; `max_rows` caps per-table sample size.
  SampleEstimator(const minihouse::Database& db, double rate,
                  int64_t max_rows, uint64_t seed);

  std::string Name() const override { return "sample"; }

  double EstimateSelectivity(const minihouse::Table& table,
                             const minihouse::Conjunction& filters) override;
  double EstimateJoinCardinality(const minihouse::BoundQuery& query,
                                 const std::vector<int>& subset) override;
  double EstimateGroupNdv(const minihouse::BoundQuery& query) override;

  const TableSample* FindSample(const std::string& table) const;

 private:
  std::map<std::string, TableSample> samples_;
};

}  // namespace bytecard::stats

#endif  // BYTECARD_STATS_TRADITIONAL_ESTIMATOR_H_
