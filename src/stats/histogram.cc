#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bytecard::stats {

EquiHeightHistogram EquiHeightHistogram::Build(
    const minihouse::Column& column, int num_buckets) {
  std::vector<int64_t> values;
  const int64_t n = column.num_rows();
  values.reserve(n);
  for (int64_t i = 0; i < n; ++i) values.push_back(column.NumericAt(i));
  return BuildFromValues(std::move(values), num_buckets);
}

EquiHeightHistogram EquiHeightHistogram::BuildFromValues(
    std::vector<int64_t> values, int num_buckets) {
  EquiHeightHistogram hist;
  if (values.empty() || num_buckets <= 0) return hist;
  std::sort(values.begin(), values.end());
  const int64_t n = static_cast<int64_t>(values.size());
  hist.total_rows_ = n;

  const int64_t target = std::max<int64_t>(1, (n + num_buckets - 1) / num_buckets);
  int64_t i = 0;
  while (i < n) {
    Bucket bucket;
    bucket.lo = values[i];
    int64_t j = std::min(n, i + target);
    // Extend so equal values never straddle a boundary (equi-height with
    // value-aligned boundaries).
    while (j < n && values[j] == values[j - 1]) ++j;
    bucket.hi = values[j - 1];
    bucket.count = j - i;
    bucket.distinct = 1;
    for (int64_t k = i + 1; k < j; ++k) {
      if (values[k] != values[k - 1]) ++bucket.distinct;
    }
    hist.total_distinct_ += bucket.distinct;
    hist.buckets_.push_back(bucket);
    i = j;
  }
  return hist;
}

double EquiHeightHistogram::EqFraction(int64_t value) const {
  if (total_rows_ == 0) return 0.0;
  for (const Bucket& b : buckets_) {
    if (value < b.lo || value > b.hi) continue;
    // Uniform-frequency assumption within the bucket.
    return static_cast<double>(b.count) /
           (static_cast<double>(std::max<int64_t>(1, b.distinct)) *
            static_cast<double>(total_rows_));
  }
  return 0.0;
}

double EquiHeightHistogram::LeFraction(int64_t value) const {
  if (total_rows_ == 0) return 0.0;
  double rows = 0.0;
  for (const Bucket& b : buckets_) {
    if (value >= b.hi) {
      rows += static_cast<double>(b.count);
    } else if (value >= b.lo) {
      // Linear interpolation within the bucket's value range.
      const double span = static_cast<double>(b.hi - b.lo) + 1.0;
      const double covered = static_cast<double>(value - b.lo) + 1.0;
      rows += static_cast<double>(b.count) * covered / span;
    }
  }
  return rows / static_cast<double>(total_rows_);
}

double EquiHeightHistogram::Selectivity(
    const minihouse::ColumnPredicate& pred) const {
  using minihouse::CompareOp;
  if (total_rows_ == 0) return 0.0;
  double sel = 0.0;
  switch (pred.op) {
    case CompareOp::kEq:
      sel = EqFraction(pred.operand);
      break;
    case CompareOp::kNe:
      sel = 1.0 - EqFraction(pred.operand);
      break;
    case CompareOp::kLe:
      sel = LeFraction(pred.operand);
      break;
    case CompareOp::kLt:
      sel = LeFraction(pred.operand) - EqFraction(pred.operand);
      break;
    case CompareOp::kGe:
      sel = 1.0 - LeFraction(pred.operand) + EqFraction(pred.operand);
      break;
    case CompareOp::kGt:
      sel = 1.0 - LeFraction(pred.operand);
      break;
    case CompareOp::kBetween:
      sel = LeFraction(pred.operand2) - LeFraction(pred.operand) +
            EqFraction(pred.operand);
      break;
    case CompareOp::kIn:
      for (int64_t v : pred.in_list) sel += EqFraction(v);
      break;
  }
  return std::clamp(sel, 0.0, 1.0);
}

std::vector<int64_t> EquiHeightHistogram::UpperBounds() const {
  std::vector<int64_t> bounds;
  bounds.reserve(buckets_.size());
  for (const Bucket& b : buckets_) bounds.push_back(b.hi);
  return bounds;
}

void EquiHeightHistogram::Serialize(BufferWriter* writer) const {
  writer->WriteU64(static_cast<uint64_t>(total_rows_));
  writer->WriteU64(static_cast<uint64_t>(total_distinct_));
  writer->WriteU64(buckets_.size());
  for (const Bucket& b : buckets_) {
    writer->WriteI64(b.lo);
    writer->WriteI64(b.hi);
    writer->WriteI64(b.count);
    writer->WriteI64(b.distinct);
  }
}

Result<EquiHeightHistogram> EquiHeightHistogram::Deserialize(
    BufferReader* reader) {
  EquiHeightHistogram hist;
  uint64_t rows = 0;
  uint64_t distinct = 0;
  uint64_t num_buckets = 0;
  BC_RETURN_IF_ERROR(reader->ReadU64(&rows));
  BC_RETURN_IF_ERROR(reader->ReadU64(&distinct));
  BC_RETURN_IF_ERROR(reader->ReadU64(&num_buckets));
  hist.total_rows_ = static_cast<int64_t>(rows);
  hist.total_distinct_ = static_cast<int64_t>(distinct);
  hist.buckets_.resize(num_buckets);
  for (auto& b : hist.buckets_) {
    BC_RETURN_IF_ERROR(reader->ReadI64(&b.lo));
    BC_RETURN_IF_ERROR(reader->ReadI64(&b.hi));
    BC_RETURN_IF_ERROR(reader->ReadI64(&b.count));
    BC_RETURN_IF_ERROR(reader->ReadI64(&b.distinct));
  }
  return hist;
}

}  // namespace bytecard::stats
