#include "stats/ndv_classic.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace bytecard::stats {

SampleFrequencies ComputeFrequencies(const std::vector<int64_t>& sample,
                                     int64_t population_size) {
  SampleFrequencies out;
  out.sample_size = static_cast<int64_t>(sample.size());
  out.population_size = population_size;

  std::unordered_map<int64_t, int64_t> counts;
  counts.reserve(sample.size());
  for (int64_t v : sample) ++counts[v];

  for (const auto& [_, c] : counts) {
    if (static_cast<int64_t>(out.freq.size()) < c) out.freq.resize(c, 0);
    ++out.freq[c - 1];
  }
  return out;
}

double ChaoEstimate(const SampleFrequencies& s) {
  const double d = static_cast<double>(s.sample_distinct());
  if (s.freq.empty()) return 0.0;
  const double f1 = static_cast<double>(s.freq[0]);
  const double f2 = s.freq.size() > 1 ? static_cast<double>(s.freq[1]) : 0.0;
  if (f2 <= 0.0) return d + f1 * (f1 - 1.0) / 2.0;
  return d + f1 * f1 / (2.0 * f2);
}

double GeeEstimate(const SampleFrequencies& s) {
  const double d = static_cast<double>(s.sample_distinct());
  if (s.sample_size == 0) return 0.0;
  const double f1 = s.freq.empty() ? 0.0 : static_cast<double>(s.freq[0]);
  const double ratio = static_cast<double>(s.population_size) /
                       static_cast<double>(s.sample_size);
  return d - f1 + std::sqrt(std::max(1.0, ratio)) * f1;
}

double ScaleUpEstimate(const SampleFrequencies& s) {
  if (s.sample_size == 0) return 0.0;
  const double d = static_cast<double>(s.sample_distinct());
  return d * static_cast<double>(s.population_size) /
         static_cast<double>(s.sample_size);
}

double ShlosserEstimate(const SampleFrequencies& s) {
  const double d = static_cast<double>(s.sample_distinct());
  if (s.sample_size == 0 || s.population_size == 0 || s.freq.empty()) {
    return d;
  }
  const double q = std::clamp(static_cast<double>(s.sample_size) /
                                  static_cast<double>(s.population_size),
                              1e-12, 1.0);
  const double one_minus_q = 1.0 - q;
  double numer = 0.0;
  double denom = 0.0;
  for (size_t i = 0; i < s.freq.size(); ++i) {
    const double fi = static_cast<double>(s.freq[i]);
    const double pw = std::pow(one_minus_q, static_cast<double>(i + 1));
    numer += pw * fi;
    denom += static_cast<double>(i + 1) * q * pw / one_minus_q * fi;
  }
  if (denom <= 0.0) return d;
  const double f1 = static_cast<double>(s.freq[0]);
  return d + f1 * numer / denom;
}

}  // namespace bytecard::stats
